//! Rustiq-lite: greedy Pauli-network synthesis in the spirit of
//! de Brugière & Martiel's Rustiq compiler (paper ref [10], used for
//! Table V).
//!
//! Instead of emitting an independent basis-change/ladder/un-ladder
//! snippet per rotation (the naive Trotter synthesis), the synthesizer
//! keeps a running Clifford *frame*: every rotation is conjugated through
//! the frame, reduced to a single-qubit `Rz` by appending Clifford gates
//! chosen to also shrink the *upcoming* rotations (a windowed global
//! greedy), and the final frame is restored in `O(n²)` gates from the
//! tableau rather than by replaying history.

use hatt_pauli::{Pauli, PauliString, PauliSum, Phase};

use crate::circuit::Circuit;
use crate::clifford::CliffordTableau;
use crate::gate::Gate;
use crate::trotter::{order_terms, TermOrder};

/// Options for the Pauli-network synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RustiqOptions {
    /// How many upcoming rotations the greedy CNOT choice looks at.
    pub lookahead: usize,
    /// Term ordering applied before synthesis.
    pub order: TermOrder,
}

impl Default for RustiqOptions {
    fn default() -> Self {
        RustiqOptions {
            lookahead: 20,
            order: TermOrder::Lexicographic,
        }
    }
}

/// Synthesizes `∏_j exp(-i·(θ_j/2)·P_j)` (applied in list order) as a
/// single Pauli network.
///
/// # Panics
///
/// Panics if any rotation string is non-Hermitian.
///
/// # Examples
///
/// ```
/// use hatt_circuit::{synthesize_pauli_network, RustiqOptions};
/// use hatt_pauli::PauliString;
///
/// let rotations = vec![
///     ("ZZI".parse::<PauliString>().unwrap(), 0.3),
///     ("IZZ".parse::<PauliString>().unwrap(), 0.5),
/// ];
/// let c = synthesize_pauli_network(3, &rotations, &RustiqOptions::default());
/// assert!(c.metrics().cnot <= 4);
/// ```
pub fn synthesize_pauli_network(
    n: usize,
    rotations: &[(PauliString, f64)],
    opts: &RustiqOptions,
) -> Circuit {
    let mut circuit = Circuit::new(n);
    let mut frame = CliffordTableau::identity(n);
    // Pending rotations conjugated through the frame lazily: we store the
    // *original* strings and compute images on demand for the active
    // window.
    let queue: Vec<(PauliString, f64)> = rotations.to_vec();
    let mut window: Vec<PauliString> = Vec::new();

    let emit = |circuit: &mut Circuit,
                frame: &mut CliffordTableau,
                window: &mut Vec<PauliString>,
                g: Gate| {
        frame.apply_gate(&g);
        for s in window.iter_mut() {
            conjugate_by_gate(s, &g);
        }
        circuit.push(g);
    };

    for (idx, (p, theta)) in queue.iter().enumerate() {
        assert!(p.is_hermitian(), "non-Hermitian rotation {p}");
        if p.is_identity() {
            continue;
        }
        // Refresh the lookahead window: images of the next few rotations.
        window.clear();
        window.push(frame.image(p));
        for (q, _) in queue.iter().skip(idx + 1).take(opts.lookahead) {
            window.push(frame.image(q));
        }

        // 1) Make every support letter of the current rotation Z.
        let current = window[0].clone();
        for q in current.support() {
            match current.op(q) {
                Pauli::X => emit(&mut circuit, &mut frame, &mut window, Gate::H(q)),
                Pauli::Y => {
                    emit(&mut circuit, &mut frame, &mut window, Gate::Sdg(q));
                    emit(&mut circuit, &mut frame, &mut window, Gate::H(q));
                }
                _ => {}
            }
        }

        // 2) Shrink to weight 1 with greedy CNOTs: every candidate
        // CNOT(a, b) with a, b in the support removes the letter on `a`;
        // pick the one that most reduces the windowed total weight.
        loop {
            let support = window[0].support();
            if support.len() <= 1 {
                break;
            }
            let mut best: Option<(usize, usize, i64)> = None;
            for &a in &support {
                for &b in &support {
                    if a == b {
                        continue;
                    }
                    let mut gain: i64 = 0;
                    for s in &window {
                        gain += cnot_weight_delta(s, a, b);
                    }
                    if best.is_none_or(|(_, _, g)| gain < g) {
                        best = Some((a, b, gain));
                    }
                }
            }
            #[allow(clippy::expect_used)]
            // hatt-lint: allow(panic) -- the loop guard keeps synthesizing only while support > 1, so a pair exists
            let (a, b, _) = best.expect("support has at least two qubits");
            emit(
                &mut circuit,
                &mut frame,
                &mut window,
                Gate::Cnot {
                    control: a,
                    target: b,
                },
            );
        }

        // 3) Emit the rotation.
        let reduced = &window[0];
        let q = reduced.support()[0];
        debug_assert_eq!(reduced.op(q), Pauli::Z, "reduced letter must be Z");
        let sign = if reduced.coefficient_phase() == Phase::MINUS_ONE {
            -1.0
        } else {
            1.0
        };
        circuit.rz(q, sign * theta);
    }

    // 4) Restore the frame.
    circuit.append(&frame.synthesize_inverse());
    circuit
}

/// Synthesizes a first-order Trotter step of a Hamiltonian with the
/// Pauli-network synthesizer (the Table V pipeline entry point).
pub fn rustiq_trotter(h: &PauliSum, time: f64, steps: usize, opts: &RustiqOptions) -> Circuit {
    assert!(steps > 0, "need at least one Trotter step");
    let terms = order_terms(h, opts.order);
    let dt = time / steps as f64;
    let mut rotations: Vec<(PauliString, f64)> = Vec::new();
    for _ in 0..steps {
        for (c, s) in &terms {
            if s.is_identity() {
                continue;
            }
            rotations.push((s.clone(), 2.0 * c.re * dt));
        }
    }
    synthesize_pauli_network(h.n_qubits(), &rotations, opts)
}

/// Weight change of `s` under conjugation by `CNOT(a, b)`, looking only at
/// the two touched qubits.
fn cnot_weight_delta(s: &PauliString, a: usize, b: usize) -> i64 {
    let before = i64::from(s.op(a) != Pauli::I) + i64::from(s.op(b) != Pauli::I);
    let (xa, za) = (s.x_bits().get(a), s.z_bits().get(a));
    let (xb, zb) = (s.x_bits().get(b), s.z_bits().get(b));
    // CNOT(c=a, t=b): x_b ^= x_a, z_a ^= z_b.
    let (nxa, nza) = (xa, za ^ zb);
    let (nxb, nzb) = (xb ^ xa, zb);
    let after = i64::from(nxa || nza) + i64::from(nxb || nzb);
    after - before
}

fn conjugate_by_gate(s: &mut PauliString, g: &Gate) {
    match *g {
        Gate::H(q) => s.conjugate_h(q),
        Gate::S(q) => s.conjugate_s(q),
        Gate::Sdg(q) => s.conjugate_sdg(q),
        Gate::Cnot { control, target } => s.conjugate_cnot(control, target),
        // hatt-lint: allow(panic) -- private helper; the synthesizer above emits only these four gates
        _ => unreachable!("synthesizer only emits H/S/S†/CNOT conjugations"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid string")
    }

    #[test]
    fn single_z_rotation_is_bare_rz() {
        let c = synthesize_pauli_network(2, &[(ps("IZ"), 0.4)], &RustiqOptions::default());
        assert_eq!(c.metrics().cnot, 0);
        assert_eq!(
            c.gates()
                .iter()
                .filter(|g| matches!(g, Gate::Rz(..)))
                .count(),
            1
        );
    }

    #[test]
    fn weight_two_rotation_uses_one_ladder_cnot_plus_restore() {
        let c = synthesize_pauli_network(2, &[(ps("ZZ"), 0.4)], &RustiqOptions::default());
        // One CNOT to reduce, frame restore adds at most a few more.
        assert!(c.metrics().cnot <= 3, "got {}", c.metrics().cnot);
    }

    #[test]
    fn shared_structure_beats_naive_on_repeated_supports() {
        // Rotations that revisit the same supports: the naive synthesis
        // re-ladders every snippet (2(w−1) CNOTs each); the network keeps
        // the frame, so repeats cost nothing.
        let rotations = vec![
            (ps("ZZII"), 0.5),
            (ps("ZZII"), 0.3),
            (ps("IIZZ"), 0.2),
            (ps("IIZZ"), 0.7),
            (ps("ZZZZ"), 0.1),
        ];
        let naive_cnots: usize = rotations.iter().map(|(p, _)| 2 * (p.weight() - 1)).sum();
        let net = synthesize_pauli_network(4, &rotations, &RustiqOptions::default());
        assert!(
            net.metrics().cnot < naive_cnots,
            "network {} vs naive {}",
            net.metrics().cnot,
            naive_cnots
        );
    }

    #[test]
    fn all_rotations_are_emitted() {
        let rotations = vec![
            (ps("XXI"), 0.1),
            (ps("IYY"), 0.2),
            (ps("ZIZ"), 0.3),
            (ps("XYZ"), 0.4),
        ];
        let c = synthesize_pauli_network(3, &rotations, &RustiqOptions::default());
        let rz_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz(..)))
            .count();
        assert_eq!(rz_count, 4);
    }

    #[test]
    fn identity_rotations_are_skipped() {
        let rotations = vec![(PauliString::identity(2), 0.5), (ps("ZI"), 0.1)];
        let c = synthesize_pauli_network(2, &rotations, &RustiqOptions::default());
        let rz_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz(..)))
            .count();
        assert_eq!(rz_count, 1);
    }

    #[test]
    fn negative_sign_strings_flip_angles() {
        let minus_z = PauliString::single(1, 0, Pauli::Z).times_phase(Phase::MINUS_ONE);
        let c = synthesize_pauli_network(1, &[(minus_z, 0.8)], &RustiqOptions::default());
        assert!(c.gates().contains(&Gate::Rz(0, -0.8)));
    }

    #[test]
    fn frame_is_restored_to_identity() {
        let rotations = vec![(ps("XYZ"), 0.1), (ps("YZX"), 0.2)];
        let c = synthesize_pauli_network(3, &rotations, &RustiqOptions::default());
        // Replaying all Clifford gates of the circuit must give identity.
        let mut t = CliffordTableau::identity(3);
        for g in c.gates() {
            if !matches!(g, Gate::Rz(..)) {
                t.apply_gate(g);
            }
        }
        assert!(t.is_identity(), "residual frame after synthesis");
    }
}
