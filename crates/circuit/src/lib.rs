//! # hatt-circuit
//!
//! Quantum-circuit substrate for the HATT framework: a gate-list IR with
//! the paper's cost metrics, Trotter synthesis of Pauli evolutions
//! (§II-B.2, Fig. 2), an optimization pipeline (the "Qiskit L3" stand-in),
//! a Rustiq-style Pauli-network synthesizer (Table V), and SABRE-style
//! routing onto heavy-hex / Sycamore coupling maps (Table IV).
//!
//! # Example: compile a qubit Hamiltonian to an optimized circuit
//!
//! ```
//! use hatt_circuit::{optimize, trotter_circuit, TermOrder};
//! use hatt_pauli::{Complex64, PauliSum};
//!
//! let mut h = PauliSum::new(3);
//! h.add(Complex64::real(0.5), "ZZI".parse()?);
//! h.add(Complex64::real(0.5), "IZZ".parse()?);
//! h.add(Complex64::real(0.2), "XIX".parse()?);
//!
//! let raw = trotter_circuit(&h, 1.0, 1, TermOrder::Lexicographic);
//! let opt = optimize(&raw);
//! assert!(opt.metrics().cnot <= raw.metrics().cnot);
//! # Ok::<(), hatt_pauli::ParsePauliStringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
mod circuit;
mod clifford;
mod gate;
mod passes;
mod route;
mod rustiq;
mod trotter;

pub use arch::CouplingMap;
pub use circuit::{Circuit, CircuitMetrics};
pub use clifford::CliffordTableau;
pub use gate::{mat2_mul, Gate, Mat2, MAT2_ID};
pub use passes::{
    accumulate_1q, cancel_adjacent_pairs, dist_up_to_phase, merge_single_qubit_runs, optimize,
};
pub use route::{route_sabre, RouterOptions, RoutingResult};
pub use rustiq::{rustiq_trotter, synthesize_pauli_network, RustiqOptions};
pub use trotter::{
    order_terms, pauli_evolution, trotter_circuit, trotter_circuit_order2, TermOrder,
};
