//! The circuit container and its cost metrics (CNOT count, single-qubit
//! count, depth) — the quantities reported in the paper's Tables I–V.

use std::fmt;

use crate::gate::Gate;

/// Cost metrics of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitMetrics {
    /// CNOT count (SWAPs count as three).
    pub cnot: usize,
    /// Single-qubit gate count.
    pub single_qubit: usize,
    /// Circuit depth (each gate costs one time step on its qubits).
    pub depth: usize,
    /// Total gate count.
    pub total: usize,
}

/// A gate-list quantum circuit on a fixed number of qubits.
///
/// # Examples
///
/// ```
/// use hatt_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cnot(0, 1).cnot(1, 2).rz(2, 0.5);
/// assert_eq!(c.n_qubits(), 3);
/// assert_eq!(c.metrics().cnot, 2);
/// assert_eq!(c.metrics().depth, 4);
/// # let _ = Gate::H(0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {gate} touches qubit {q}, register has {}",
                self.n_qubits
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }

    /// Appends an X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Z rotation.
    pub fn rz(&mut self, q: usize, angle: f64) -> &mut Self {
        self.push(Gate::Rz(q, angle))
    }

    /// Appends a CNOT.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cnot { control, target })
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }

    /// Appends all gates of another circuit.
    ///
    /// # Panics
    ///
    /// Panics if the other circuit uses more qubits.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot append a {}-qubit circuit to {} qubits",
            other.n_qubits,
            self.n_qubits
        );
        self.gates.extend(other.gates.iter().cloned());
        self
    }

    /// The inverse circuit (reversed gate order, every gate inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(|g| g.inverse()).collect(),
        }
    }

    /// Replaces every SWAP with its three-CNOT decomposition.
    pub fn decompose_swaps(&mut self) {
        let mut out = Vec::with_capacity(self.gates.len());
        for g in self.gates.drain(..) {
            if let Gate::Swap(a, b) = g {
                out.push(Gate::Cnot {
                    control: a,
                    target: b,
                });
                out.push(Gate::Cnot {
                    control: b,
                    target: a,
                });
                out.push(Gate::Cnot {
                    control: a,
                    target: b,
                });
            } else {
                out.push(g);
            }
        }
        self.gates = out;
    }

    /// Computes the cost metrics: CNOT count (SWAP = 3), single-qubit
    /// count, ASAP depth, total gates.
    pub fn metrics(&self) -> CircuitMetrics {
        let mut cnot = 0;
        let mut single = 0;
        let mut busy_until = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            match g {
                Gate::Cnot { .. } => cnot += 1,
                Gate::Swap(..) => cnot += 3,
                _ => single += 1,
            }
            let qs = g.qubits();
            let start = qs.iter().map(|&q| busy_until[q]).max().unwrap_or(0);
            let steps = if matches!(g, Gate::Swap(..)) { 3 } else { 1 };
            for &q in &qs {
                busy_until[q] = start + steps;
            }
            depth = depth.max(start + steps);
        }
        CircuitMetrics {
            cnot,
            single_qubit: single,
            depth,
            total: self.gates.len(),
        }
    }

    /// Consumes the circuit, returning the raw gate list.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Builds a circuit from a gate list.
    ///
    /// # Panics
    ///
    /// Panics if any gate exceeds the register.
    pub fn from_gates(n_qubits: usize, gates: Vec<Gate>) -> Self {
        let mut c = Circuit::new(n_qubits);
        for g in gates {
            c.push(g);
        }
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates)",
            self.n_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_count_gates_and_depth() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cnot(0, 1).cnot(1, 2).rz(2, 0.3);
        let m = c.metrics();
        assert_eq!(m.cnot, 2);
        assert_eq!(m.single_qubit, 3);
        assert_eq!(m.total, 5);
        // h0 | h1 in parallel (depth 1), cx01 (2), cx12 (3), rz2 (4).
        assert_eq!(m.depth, 4);
    }

    #[test]
    fn parallel_gates_share_depth() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        assert_eq!(c.metrics().depth, 1);
    }

    #[test]
    fn swap_counts_as_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(c.metrics().cnot, 3);
        assert_eq!(c.metrics().depth, 3);
        c.decompose_swaps();
        assert_eq!(c.len(), 3);
        assert_eq!(c.metrics().cnot, 3);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cnot(0, 1).rz(1, 0.5);
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::Rz(1, -0.5));
        assert_eq!(inv.gates()[3], Gate::H(0));
        assert_eq!(
            inv.gates()[1],
            Gate::Cnot {
                control: 0,
                target: 1
            }
        );
        assert_eq!(inv.gates()[2], Gate::Sdg(1));
    }

    #[test]
    #[should_panic(expected = "register has 2")]
    fn out_of_range_gate_rejected() {
        Circuit::new(2).h(2);
    }

    #[test]
    fn append_and_from_gates() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);
        let c = Circuit::from_gates(3, a.clone().into_gates());
        assert_eq!(c, a);
        assert!(!c.is_empty());
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
