//! The gate set of the circuit IR: the `{CNOT, U3}` basis the paper
//! compiles to (§V-B.3), plus the named Clifford and rotation gates that
//! Trotter synthesis emits before optimization.

use std::fmt;

use hatt_pauli::Complex64;

/// A 2×2 complex matrix in row-major order.
pub type Mat2 = [[Complex64; 2]; 2];

/// Multiplies two 2×2 matrices.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// The 2×2 identity.
pub const MAT2_ID: Mat2 = [
    [Complex64::ONE, Complex64::ZERO],
    [Complex64::ZERO, Complex64::ONE],
];

/// A quantum gate instance (gate kind + the qubits it acts on).
///
/// # Examples
///
/// ```
/// use hatt_circuit::Gate;
///
/// let g = Gate::Cnot { control: 0, target: 2 };
/// assert_eq!(g.qubits(), vec![0, 2]);
/// assert!(g.is_two_qubit());
/// assert_eq!(Gate::H(1).inverse(), Gate::H(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// Z rotation by the given angle.
    Rz(usize, f64),
    /// X rotation by the given angle.
    Rx(usize, f64),
    /// Y rotation by the given angle.
    Ry(usize, f64),
    /// Generic single-qubit gate `U3(θ, φ, λ)` (the merged-run basis gate).
    U3 {
        /// Target qubit.
        q: usize,
        /// Polar angle θ.
        theta: f64,
        /// Phase angle φ.
        phi: f64,
        /// Phase angle λ.
        lambda: f64,
    },
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// SWAP (decomposes to three CNOTs for metric purposes).
    Swap(usize, usize),
}

impl Gate {
    /// The qubits the gate touches, in a stable order.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::Rz(q, _)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::U3 { q, .. } => vec![q],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Swap(a, b) => vec![a, b],
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. } | Gate::Swap(..))
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::Rz(q, a) => Gate::Rz(q, -a),
            Gate::Rx(q, a) => Gate::Rx(q, -a),
            Gate::Ry(q, a) => Gate::Ry(q, -a),
            Gate::U3 {
                q,
                theta,
                phi,
                lambda,
            } => Gate::U3 {
                q,
                theta: -theta,
                phi: -lambda,
                lambda: -phi,
            },
            ref g => g.clone(), // H, X, Y, Z, CNOT, SWAP are involutions
        }
    }

    /// The 2×2 matrix of a single-qubit gate (`None` for two-qubit gates).
    pub fn matrix1q(&self) -> Option<Mat2> {
        use Complex64 as C;
        let inv_sqrt2 = C::real(1.0 / std::f64::consts::SQRT_2);
        Some(match *self {
            Gate::H(_) => [[inv_sqrt2, inv_sqrt2], [inv_sqrt2, -inv_sqrt2]],
            Gate::X(_) => [[C::ZERO, C::ONE], [C::ONE, C::ZERO]],
            Gate::Y(_) => [[C::ZERO, -C::I], [C::I, C::ZERO]],
            Gate::Z(_) => [[C::ONE, C::ZERO], [C::ZERO, -C::ONE]],
            Gate::S(_) => [[C::ONE, C::ZERO], [C::ZERO, C::I]],
            Gate::Sdg(_) => [[C::ONE, C::ZERO], [C::ZERO, -C::I]],
            Gate::Rz(_, a) => [[C::cis(-a / 2.0), C::ZERO], [C::ZERO, C::cis(a / 2.0)]],
            Gate::Rx(_, a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                [[C::real(c), C::new(0.0, -s)], [C::new(0.0, -s), C::real(c)]]
            }
            Gate::Ry(_, a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                [[C::real(c), C::real(-s)], [C::real(s), C::real(c)]]
            }
            Gate::U3 {
                theta, phi, lambda, ..
            } => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [
                    [C::real(c), -C::cis(lambda) * s],
                    [C::cis(phi) * s, C::cis(phi + lambda) * c],
                ]
            }
            Gate::Cnot { .. } | Gate::Swap(..) => return None,
        })
    }

    /// Decomposes a 2×2 unitary into `U3(θ, φ, λ)` parameters, dropping
    /// the global phase. Returns `None` when the matrix is (a phase times)
    /// the identity.
    pub fn u3_params(u: &Mat2) -> Option<(f64, f64, f64)> {
        let eps = 1e-12;
        let n00 = u[0][0].abs();
        if n00 > eps {
            // Strip global phase so u00 becomes real nonnegative.
            let g = Complex64::new(u[0][0].re / n00, -u[0][0].im / n00);
            let w10 = g * u[1][0];
            let w01 = g * u[0][1];
            let w11 = g * u[1][1];
            let theta = 2.0 * w10.abs().atan2(n00);
            if w10.abs() > eps {
                let phi = w10.im.atan2(w10.re);
                let lambda = (-w01).im.atan2((-w01).re);
                Some((theta, phi, lambda))
            } else {
                // Diagonal: U = diag(1, e^{i(φ+λ)}) up to phase.
                let total = w11.im.atan2(w11.re);
                if total.abs() < eps {
                    None // identity
                } else {
                    Some((0.0, 0.0, total))
                }
            }
        } else {
            // Anti-diagonal: θ = π.
            let n10 = u[1][0].abs();
            let g = Complex64::new(u[1][0].re / n10, -u[1][0].im / n10);
            let w01 = g * u[0][1];
            let lambda = (-w01).im.atan2((-w01).re);
            Some((std::f64::consts::PI, 0.0, lambda))
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Y(q) => write!(f, "y q{q}"),
            Gate::Z(q) => write!(f, "z q{q}"),
            Gate::S(q) => write!(f, "s q{q}"),
            Gate::Sdg(q) => write!(f, "sdg q{q}"),
            Gate::Rz(q, a) => write!(f, "rz({a:.6}) q{q}"),
            Gate::Rx(q, a) => write!(f, "rx({a:.6}) q{q}"),
            Gate::Ry(q, a) => write!(f, "ry({a:.6}) q{q}"),
            Gate::U3 {
                q,
                theta,
                phi,
                lambda,
            } => write!(f, "u3({theta:.6},{phi:.6},{lambda:.6}) q{q}"),
            Gate::Cnot { control, target } => write!(f, "cx q{control},q{target}"),
            Gate::Swap(a, b) => write!(f, "swap q{a},q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats_close(a: &Mat2, b: &Mat2, eps: f64) -> bool {
        (0..2).all(|i| (0..2).all(|j| a[i][j].approx_eq(b[i][j], eps)))
    }

    fn scale(m: &Mat2, c: Complex64) -> Mat2 {
        let mut out = *m;
        for row in &mut out {
            for v in row.iter_mut() {
                *v *= c;
            }
        }
        out
    }

    /// Equality up to global phase.
    fn equal_up_to_phase(a: &Mat2, b: &Mat2) -> bool {
        for i in 0..2 {
            for j in 0..2 {
                if b[i][j].abs() > 1e-9 {
                    let g = a[i][j] * b[i][j].recip();
                    return mats_close(a, &scale(b, g), 1e-9);
                }
            }
        }
        false
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::Rz(3, 0.5).qubits(), vec![3]);
        assert_eq!(Gate::Swap(1, 4).qubits(), vec![1, 4]);
        assert!(!Gate::H(0).is_two_qubit());
        assert!(Gate::Cnot {
            control: 0,
            target: 1
        }
        .is_two_qubit());
    }

    #[test]
    fn inverses_multiply_to_identity() {
        let gates = vec![
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::X(0),
            Gate::Rz(0, 0.7),
            Gate::Rx(0, -1.1),
            Gate::Ry(0, 2.3),
            Gate::U3 {
                q: 0,
                theta: 0.3,
                phi: 1.0,
                lambda: -0.4,
            },
        ];
        for g in gates {
            let m = g.matrix1q().unwrap();
            let mi = g.inverse().matrix1q().unwrap();
            let prod = mat2_mul(&m, &mi);
            assert!(
                equal_up_to_phase(&prod, &MAT2_ID),
                "{g} inverse fails: {prod:?}"
            );
        }
    }

    #[test]
    fn s_squared_is_z() {
        let s = Gate::S(0).matrix1q().unwrap();
        let z = Gate::Z(0).matrix1q().unwrap();
        assert!(mats_close(&mat2_mul(&s, &s), &z, 1e-12));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Gate::H(0).matrix1q().unwrap();
        let x = Gate::X(0).matrix1q().unwrap();
        let z = Gate::Z(0).matrix1q().unwrap();
        assert!(mats_close(&mat2_mul(&mat2_mul(&h, &x), &h), &z, 1e-12));
    }

    #[test]
    fn u3_roundtrip_for_random_products() {
        // Compose a few gates, decompose to U3, and compare matrices.
        let seq = [
            Gate::H(0),
            Gate::Rz(0, 0.3),
            Gate::Ry(0, -1.2),
            Gate::S(0),
            Gate::Rx(0, 0.9),
        ];
        let mut acc = MAT2_ID;
        for g in &seq {
            acc = mat2_mul(&g.matrix1q().unwrap(), &acc);
        }
        let (theta, phi, lambda) = Gate::u3_params(&acc).expect("non-identity");
        let rebuilt = Gate::U3 {
            q: 0,
            theta,
            phi,
            lambda,
        }
        .matrix1q()
        .unwrap();
        assert!(
            equal_up_to_phase(&rebuilt, &acc),
            "U3 decomposition mismatch"
        );
    }

    #[test]
    fn u3_params_detects_identity() {
        assert_eq!(Gate::u3_params(&MAT2_ID), None);
        let phased = scale(&MAT2_ID, Complex64::cis(0.8));
        assert_eq!(Gate::u3_params(&phased), None);
    }

    #[test]
    fn u3_params_handles_antidiagonal() {
        let x = Gate::X(0).matrix1q().unwrap();
        let (theta, _, _) = Gate::u3_params(&x).unwrap();
        assert!((theta - std::f64::consts::PI).abs() < 1e-12);
        let rebuilt = Gate::U3 {
            q: 0,
            theta,
            phi: 0.0,
            lambda: Gate::u3_params(&x).unwrap().2,
        }
        .matrix1q()
        .unwrap();
        assert!(equal_up_to_phase(&rebuilt, &x));
    }

    #[test]
    fn u3_params_handles_diagonal_rz() {
        let rz = Gate::Rz(0, 1.3).matrix1q().unwrap();
        let (theta, phi, lambda) = Gate::u3_params(&rz).unwrap();
        assert!(theta.abs() < 1e-12);
        let rebuilt = Gate::U3 {
            q: 0,
            theta,
            phi,
            lambda,
        }
        .matrix1q()
        .unwrap();
        assert!(equal_up_to_phase(&rebuilt, &rz));
    }

    #[test]
    fn display_smoke() {
        assert_eq!(
            Gate::Cnot {
                control: 1,
                target: 0
            }
            .to_string(),
            "cx q1,q0"
        );
        assert!(Gate::Rz(2, 0.5).to_string().starts_with("rz(0.5"));
    }
}
