//! Circuit optimization passes — the "Qiskit L3" stand-in applied after
//! Trotter synthesis in the paper's compilation pipeline (§V-B.3):
//! single-qubit-run merging into `U3`, adjacent-inverse cancellation
//! (including CNOT pairs), and RZ fusion.
use hatt_pauli::Complex64;

use crate::circuit::Circuit;
use crate::gate::{mat2_mul, Gate, Mat2, MAT2_ID};

/// Merges maximal runs of single-qubit gates into at most one `U3` per
/// run (runs are delimited by two-qubit gates). Identity runs vanish.
pub fn merge_single_qubit_runs(c: &Circuit) -> Circuit {
    let n = c.n_qubits();
    let mut pending: Vec<Option<Mat2>> = vec![None; n];
    let mut out = Circuit::new(n);

    let flush = |pending: &mut Vec<Option<Mat2>>, out: &mut Circuit, q: usize| {
        if let Some(m) = pending[q].take() {
            if let Some((theta, phi, lambda)) = Gate::u3_params(&m) {
                out.push(Gate::U3 {
                    q,
                    theta,
                    phi,
                    lambda,
                });
            }
        }
    };

    for g in c.gates() {
        if let Some(m) = g.matrix1q() {
            let q = g.qubits()[0];
            let acc = pending[q].unwrap_or(MAT2_ID);
            pending[q] = Some(mat2_mul(&m, &acc));
        } else {
            for q in g.qubits() {
                flush(&mut pending, &mut out, q);
            }
            out.push(g.clone());
        }
    }
    for q in 0..n {
        flush(&mut pending, &mut out, q);
    }
    out
}

/// Cancels adjacent inverse pairs: identical CNOTs, H·H, S·S†, X·X, and
/// fuses adjacent RZ rotations on the same qubit (dropping rotations that
/// sum to zero). "Adjacent" means no intervening gate touches any shared
/// qubit. Returns the rewritten circuit.
pub fn cancel_adjacent_pairs(c: &Circuit) -> Circuit {
    let n = c.n_qubits();
    // For each qubit, the index (into `out`) of the last surviving gate
    // touching it.
    let mut last: Vec<Option<usize>> = vec![None; n];
    let mut out: Vec<Option<Gate>> = Vec::with_capacity(c.len());

    for g in c.gates() {
        let qs = g.qubits();
        // The candidate predecessor must be the last gate on *all* qubits
        // of g.
        let pred = qs
            .iter()
            .map(|&q| last[q])
            .reduce(|a, b| if a == b { a } else { None })
            .flatten();
        if let Some(idx) = pred {
            #[allow(clippy::expect_used)]
            // hatt-lint: allow(panic) -- `last` only ever points at slots still occupied in `out`
            let prev = out[idx].clone().expect("live gate");
            if prev.qubits() == qs {
                // Exact inverse pair?
                if prev.inverse() == *g {
                    out[idx] = None;
                    for &q in &qs {
                        last[q] = previous_on_qubit(&out, idx, q);
                    }
                    continue;
                }
                // RZ fusion.
                if let (Gate::Rz(q1, a), Gate::Rz(q2, b)) = (&prev, g) {
                    if q1 == q2 {
                        let sum = a + b;
                        if sum.abs() < 1e-12 {
                            out[idx] = None;
                            last[*q1] = previous_on_qubit(&out, idx, *q1);
                        } else {
                            out[idx] = Some(Gate::Rz(*q1, sum));
                        }
                        continue;
                    }
                }
            }
        }
        let idx = out.len();
        out.push(Some(g.clone()));
        for &q in &qs {
            last[q] = Some(idx);
        }
    }

    Circuit::from_gates(n, out.into_iter().flatten().collect())
}

fn previous_on_qubit(out: &[Option<Gate>], before: usize, q: usize) -> Option<usize> {
    (0..before)
        .rev()
        .find(|&i| out[i].as_ref().is_some_and(|g| g.qubits().contains(&q)))
}

/// The full optimization pipeline: alternate CNOT/inverse cancellation and
/// single-qubit-run merging until a fixpoint (bounded at 10 rounds).
pub fn optimize(c: &Circuit) -> Circuit {
    let mut current = c.clone();
    for _ in 0..10 {
        let cancelled = cancel_adjacent_pairs(&current);
        let merged = merge_single_qubit_runs(&cancelled);
        if merged == current {
            return merged;
        }
        current = merged;
    }
    current
}

/// Convenience: fidelity-preserving unitary of a 1-qubit circuit segment
/// (used by tests and the router's metrics sanity checks).
pub fn accumulate_1q(c: &Circuit, q: usize) -> Mat2 {
    let mut acc = MAT2_ID;
    for g in c.gates() {
        if g.qubits() == [q] {
            if let Some(m) = g.matrix1q() {
                acc = mat2_mul(&m, &acc);
            }
        }
    }
    acc
}

/// Frobenius distance between two 2×2 matrices up to global phase.
pub fn dist_up_to_phase(a: &Mat2, b: &Mat2) -> f64 {
    // Align the phases on the largest entry of b.
    let mut best = (0, 0);
    let mut mag = -1.0;
    for (i, row) in b.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if v.abs() > mag {
                mag = v.abs();
                best = (i, j);
            }
        }
    }
    if mag < 1e-12 {
        return f64::INFINITY;
    }
    let g = a[best.0][best.1] * b[best.0][best.1].recip();
    let g = if g.abs() < 1e-12 {
        Complex64::ONE
    } else {
        g * (1.0 / g.abs())
    };
    let mut d = 0.0;
    for i in 0..2 {
        for j in 0..2 {
            let diff = a[i][j] - b[i][j] * g;
            d += diff.norm_sqr();
        }
    }
    d.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_cnot_cancels() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(0, 1);
        let opt = cancel_adjacent_pairs(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn interleaved_cnots_do_not_cancel() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).h(1).cnot(0, 1);
        let opt = cancel_adjacent_pairs(&c);
        assert_eq!(opt.metrics().cnot, 2);
    }

    #[test]
    fn spectator_gates_do_not_block_cancellation() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).h(2).cnot(0, 1);
        let opt = cancel_adjacent_pairs(&c);
        assert_eq!(opt.metrics().cnot, 0);
        assert_eq!(opt.metrics().single_qubit, 1);
    }

    #[test]
    fn rz_fusion_sums_angles() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3).rz(0, 0.4);
        let opt = cancel_adjacent_pairs(&c);
        assert_eq!(opt.gates(), &[Gate::Rz(0, 0.7)]);
        let mut c2 = Circuit::new(1);
        c2.rz(0, 0.3).rz(0, -0.3);
        assert!(cancel_adjacent_pairs(&c2).is_empty());
    }

    #[test]
    fn h_h_and_s_sdg_cancel() {
        let mut c = Circuit::new(1);
        c.h(0).h(0).s(0).sdg(0);
        assert!(cancel_adjacent_pairs(&c).is_empty());
    }

    #[test]
    fn cascaded_cancellation_via_fixpoint() {
        // cx, (h h), cx: one cancellation exposes the next.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).h(1).h(1).cnot(0, 1);
        let opt = optimize(&c);
        assert!(opt.is_empty(), "got {opt}");
    }

    #[test]
    fn merge_runs_to_single_u3() {
        let mut c = Circuit::new(1);
        c.h(0).s(0).rz(0, 0.4).h(0);
        let merged = merge_single_qubit_runs(&c);
        assert_eq!(merged.len(), 1);
        assert!(matches!(merged.gates()[0], Gate::U3 { .. }));
        // Matrix equivalence up to global phase.
        let d = dist_up_to_phase(&accumulate_1q(&merged, 0), &accumulate_1q(&c, 0));
        assert!(d < 1e-9, "distance {d}");
    }

    #[test]
    fn identity_runs_vanish() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(merge_single_qubit_runs(&c).is_empty());
        let mut c2 = Circuit::new(1);
        c2.s(0).s(0).push(Gate::Z(0));
        let merged = merge_single_qubit_runs(&c2);
        assert!(merged.is_empty(), "S·S·Z = Z·Z = I, got {merged}");
    }

    #[test]
    fn merging_respects_two_qubit_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).h(0);
        let merged = merge_single_qubit_runs(&c);
        // Two separate U3s around the CNOT.
        assert_eq!(merged.metrics().single_qubit, 2);
        assert_eq!(merged.metrics().cnot, 1);
    }

    #[test]
    fn optimize_preserves_1q_unitary() {
        let mut c = Circuit::new(1);
        c.h(0).s(0).h(0).sdg(0).rz(0, 1.1).h(0).h(0).rz(0, -0.1);
        let opt = optimize(&c);
        let d = dist_up_to_phase(&accumulate_1q(&opt, 0), &accumulate_1q(&c, 0));
        assert!(d < 1e-9, "distance {d}");
        assert!(opt.len() <= 2);
    }
}
