//! A Clifford tableau: tracks the conjugation action `P ↦ F P F†` of an
//! accumulated Clifford frame `F` via the images of the `X_q`/`Z_q`
//! generators, and synthesizes a circuit for `F†` by Gaussian
//! elimination (Aaronson-Gottesman style).
//!
//! Used by the Rustiq-lite Pauli-network synthesizer: rotations are
//! conjugated through the frame lazily (O(w) string products instead of
//! rewriting every pending rotation on each appended gate), and the final
//! frame restore costs O(n²) gates instead of replaying the history.

use hatt_pauli::{Pauli, PauliString, Phase};

use crate::circuit::Circuit;
use crate::gate::Gate;

/// The conjugation tableau of a Clifford frame `F`.
///
/// # Examples
///
/// ```
/// use hatt_circuit::{CliffordTableau, Gate};
/// use hatt_pauli::PauliString;
///
/// let mut t = CliffordTableau::identity(2);
/// t.apply_gate(&Gate::H(0));
/// t.apply_gate(&Gate::Cnot { control: 0, target: 1 });
/// // F X_0 F† for F = CNOT·H: X0 →(H)→ Z0, then Z on the CNOT control
/// // is unchanged.
/// let img = t.image(&"IX".parse::<PauliString>().unwrap());
/// assert_eq!(img.to_string(), "IZ");
/// // An X on the CNOT target spreads: X1 → X1 X0? No — X on target stays.
/// let x1 = t.image(&"XI".parse::<PauliString>().unwrap());
/// assert_eq!(x1.to_string(), "XI");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CliffordTableau {
    n: usize,
    x_image: Vec<PauliString>,
    z_image: Vec<PauliString>,
}

impl CliffordTableau {
    /// The identity frame on `n` qubits.
    pub fn identity(n: usize) -> Self {
        CliffordTableau {
            n,
            x_image: (0..n)
                .map(|q| PauliString::single(n, q, Pauli::X))
                .collect(),
            z_image: (0..n)
                .map(|q| PauliString::single(n, q, Pauli::Z))
                .collect(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Returns `true` when the frame is the identity (up to signs being
    /// exactly `+1`).
    pub fn is_identity(&self) -> bool {
        (0..self.n).all(|q| {
            self.x_image[q] == PauliString::single(self.n, q, Pauli::X)
                && self.z_image[q] == PauliString::single(self.n, q, Pauli::Z)
        })
    }

    /// Extends the frame by one more gate: `F ← g ∘ F`.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates (rotations, `U3`).
    pub fn apply_gate(&mut self, gate: &Gate) {
        let conj = |s: &mut PauliString| match *gate {
            Gate::H(q) => s.conjugate_h(q),
            Gate::S(q) => s.conjugate_s(q),
            Gate::Sdg(q) => s.conjugate_sdg(q),
            Gate::X(q) => {
                // X P X: flips sign of Z/Y letters at q.
                if s.z_bits().get(q) {
                    *s = s.times_phase(Phase::MINUS_ONE);
                }
            }
            Gate::Y(q) => {
                if s.z_bits().get(q) != s.x_bits().get(q) {
                    *s = s.times_phase(Phase::MINUS_ONE);
                }
            }
            Gate::Z(q) => {
                if s.x_bits().get(q) {
                    *s = s.times_phase(Phase::MINUS_ONE);
                }
            }
            Gate::Cnot { control, target } => s.conjugate_cnot(control, target),
            Gate::Swap(a, b) => {
                s.conjugate_cnot(a, b);
                s.conjugate_cnot(b, a);
                s.conjugate_cnot(a, b);
            }
            // hatt-lint: allow(panic) -- documented caller contract: only Clifford gates enter the tableau
            ref g => panic!("non-Clifford gate {g} cannot enter the tableau"),
        };
        for s in self.x_image.iter_mut().chain(self.z_image.iter_mut()) {
            conj(s);
        }
    }

    /// Applies every gate of a circuit.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        for g in c.gates() {
            self.apply_gate(g);
        }
    }

    /// The image `F P F†` of an arbitrary Pauli string.
    pub fn image(&self, p: &PauliString) -> PauliString {
        let mut out = PauliString::identity(self.n).times_phase(p.raw_phase());
        // P = i^k ∏ X^x Z^z per qubit (X before Z within a qubit, matching
        // the internal representation), so the image is the ordered
        // product of generator images.
        for q in 0..self.n {
            if p.x_bits().get(q) {
                out.mul_assign_right(&self.x_image[q]);
            }
            if p.z_bits().get(q) {
                out.mul_assign_right(&self.z_image[q]);
            }
        }
        out
    }

    /// Synthesizes a circuit realizing `F†` (up to global phase): applying
    /// the returned gates to this tableau reduces it to the identity.
    pub fn synthesize_inverse(&self) -> Circuit {
        let mut t = self.clone();
        let mut c = Circuit::new(self.n);
        let mut emit = |t: &mut CliffordTableau, c: &mut Circuit, g: Gate| {
            t.apply_gate(&g);
            c.push(g);
        };

        for q in 0..self.n {
            // --- Reduce x_image[q] to ±X_q. ---
            reduce_row_to_x(&mut t, &mut c, q, true, &mut emit);
            // --- Reduce z_image[q] to ±Z_q via the H-sandwich. ---
            emit(&mut t, &mut c, Gate::H(q));
            reduce_row_to_x(&mut t, &mut c, q, false, &mut emit);
            emit(&mut t, &mut c, Gate::H(q));
            // --- Fix signs. ---
            let x_neg = t.x_image[q].coefficient_phase() == Phase::MINUS_ONE;
            let z_neg = t.z_image[q].coefficient_phase() == Phase::MINUS_ONE;
            match (x_neg, z_neg) {
                (true, true) => emit(&mut t, &mut c, Gate::Y(q)),
                (true, false) => emit(&mut t, &mut c, Gate::Z(q)),
                (false, true) => emit(&mut t, &mut c, Gate::X(q)),
                (false, false) => {}
            }
        }
        debug_assert!(t.is_identity(), "tableau reduction incomplete");
        c
    }
}

/// Reduces one row to `±X_q` using gates on columns `≥ q` only. When
/// `primary` is `true` the row is `x_image[q]` (free gate choice,
/// including a SWAP to bring an x-bit to column `q`); when `false` it is
/// `z_image[q]` *after* an `H(q)` sandwich, where the structure guarantees
/// an x-bit at `q` already and only `X_q`-preserving gates are used.
fn reduce_row_to_x(
    t: &mut CliffordTableau,
    c: &mut Circuit,
    q: usize,
    primary: bool,
    emit: &mut impl FnMut(&mut CliffordTableau, &mut Circuit, Gate),
) {
    let n = t.n;
    let row = |t: &CliffordTableau| {
        if primary {
            t.x_image[q].clone()
        } else {
            t.z_image[q].clone()
        }
    };

    if primary {
        // Ensure an x-bit exists at some column ≥ q.
        let r = row(t);
        if !(q..n).any(|j| r.x_bits().get(j)) {
            #[allow(clippy::expect_used)]
            let j = (q..n)
                .find(|&j| r.z_bits().get(j))
                // hatt-lint: allow(panic) -- tableau rows are full-rank: the pivot row has support at column >= q
                .expect("row must be supported on columns >= q");
            emit(t, c, Gate::H(j));
        }
        // Bring the x-bit to column q.
        let r = row(t);
        if !r.x_bits().get(q) {
            #[allow(clippy::expect_used)]
            let j = (q..n)
                .find(|&j| r.x_bits().get(j))
                // hatt-lint: allow(panic) -- the branch above just emitted H to create this x-bit
                .expect("an x-bit exists by construction");
            emit(t, c, Gate::Swap(q, j));
        }
    }
    debug_assert!(row(t).x_bits().get(q), "x-bit at pivot column");

    // Clear x-bits on other columns.
    let r = row(t);
    for j in (q + 1)..n {
        if r.x_bits().get(j) {
            emit(
                t,
                c,
                Gate::Cnot {
                    control: q,
                    target: j,
                },
            );
        }
    }
    // Clear the z-bit at the pivot (letter Y → X).
    let r = row(t);
    if r.z_bits().get(q) {
        emit(t, c, Gate::S(q));
    }
    // Clear remaining pure-Z columns: H then CNOT.
    let r = row(t);
    for j in (q + 1)..n {
        if r.z_bits().get(j) {
            emit(t, c, Gate::H(j));
            emit(
                t,
                c,
                Gate::Cnot {
                    control: q,
                    target: j,
                },
            );
        }
    }
    debug_assert_eq!(row(t).weight(), 1, "row reduced to a single letter");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid string")
    }

    #[test]
    fn identity_tableau_maps_strings_to_themselves() {
        let t = CliffordTableau::identity(3);
        for s in ["XYZ", "IZI", "YYX"] {
            assert_eq!(t.image(&ps(s)), ps(s));
        }
        assert!(t.is_identity());
    }

    #[test]
    fn images_match_direct_conjugation() {
        // Build a random-ish frame and compare tableau images against
        // conjugating the string directly, gate by gate.
        let gates = vec![
            Gate::H(0),
            Gate::S(1),
            Gate::Cnot {
                control: 0,
                target: 2,
            },
            Gate::Sdg(2),
            Gate::Cnot {
                control: 2,
                target: 1,
            },
            Gate::H(1),
            Gate::Swap(0, 1),
        ];
        let mut t = CliffordTableau::identity(3);
        for g in &gates {
            t.apply_gate(g);
        }
        for s in ["XII", "IYI", "IIZ", "XYZ", "ZZX", "YXY"] {
            let mut direct = ps(s);
            for g in &gates {
                match *g {
                    Gate::H(q) => direct.conjugate_h(q),
                    Gate::S(q) => direct.conjugate_s(q),
                    Gate::Sdg(q) => direct.conjugate_sdg(q),
                    Gate::Cnot { control, target } => direct.conjugate_cnot(control, target),
                    Gate::Swap(a, b) => {
                        direct.conjugate_cnot(a, b);
                        direct.conjugate_cnot(b, a);
                        direct.conjugate_cnot(a, b);
                    }
                    _ => unreachable!(),
                }
            }
            assert_eq!(t.image(&ps(s)), direct, "image mismatch for {s}");
        }
    }

    #[test]
    fn image_is_an_algebra_homomorphism() {
        let mut t = CliffordTableau::identity(2);
        t.apply_gate(&Gate::H(0));
        t.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        t.apply_gate(&Gate::S(1));
        for (a, b) in [("XY", "ZZ"), ("YI", "IZ"), ("XX", "YY")] {
            let (pa, pb) = (ps(a), ps(b));
            assert_eq!(
                t.image(&pa.mul(&pb)),
                t.image(&pa).mul(&t.image(&pb)),
                "homomorphism fails on {a}·{b}"
            );
        }
    }

    #[test]
    fn synthesize_inverse_resets_frames() {
        let frames: Vec<Vec<Gate>> = vec![
            vec![Gate::H(0)],
            vec![Gate::S(0), Gate::H(1)],
            vec![
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
                Gate::S(1),
                Gate::Cnot {
                    control: 1,
                    target: 2,
                },
                Gate::Sdg(0),
                Gate::Swap(1, 2),
            ],
            vec![
                Gate::Cnot {
                    control: 2,
                    target: 0,
                },
                Gate::H(2),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
                Gate::H(1),
                Gate::S(2),
                Gate::Cnot {
                    control: 1,
                    target: 2,
                },
            ],
        ];
        for gates in frames {
            let mut t = CliffordTableau::identity(3);
            for g in &gates {
                t.apply_gate(g);
            }
            let inv = t.synthesize_inverse();
            let mut check = t.clone();
            check.apply_circuit(&inv);
            assert!(
                check.is_identity(),
                "frame {gates:?} not reset by synthesized inverse"
            );
        }
    }

    #[test]
    fn pauli_frame_signs_are_fixed() {
        // A frame of plain Paulis only flips signs; the inverse must fix
        // them via the sign-fixing X/Y/Z gates.
        let mut t = CliffordTableau::identity(2);
        t.apply_gate(&Gate::X(0));
        t.apply_gate(&Gate::Z(1));
        let inv = t.synthesize_inverse();
        let mut check = t.clone();
        check.apply_circuit(&inv);
        assert!(check.is_identity());
    }

    #[test]
    #[should_panic(expected = "non-Clifford")]
    fn rotations_rejected() {
        CliffordTableau::identity(1).apply_gate(&Gate::Rz(0, 0.1));
    }
}
