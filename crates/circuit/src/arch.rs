//! Hardware coupling maps for architecture-aware compilation (Table IV):
//! IBM-style heavy-hex lattices ("Montreal", "Manhattan") and a
//! Google-style diagonal grid ("Sycamore").
//!
//! These are structural stand-ins with the published qubit counts (27, 65
//! and 54) and the characteristic connectivity *style* of the named
//! devices, generated programmatically rather than copied from vendor
//! calibration data — see DESIGN.md §3.

/// An undirected qubit connectivity graph with precomputed all-pairs
/// shortest-path distances.
///
/// # Examples
///
/// ```
/// use hatt_circuit::CouplingMap;
///
/// let line = CouplingMap::line(4);
/// assert_eq!(line.distance(0, 3), 3);
/// assert!(line.are_adjacent(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    name: String,
    n: usize,
    adjacency: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    dist: Vec<Vec<u32>>,
}

impl CouplingMap {
    /// Builds a coupling map from an edge list.
    ///
    /// # Panics
    ///
    /// Panics when an edge is out of range, when the graph is
    /// disconnected, or when `n` is zero.
    pub fn new(name: impl Into<String>, n: usize, edge_list: &[(usize, usize)]) -> Self {
        assert!(n > 0, "need at least one qubit");
        let mut adjacency = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for &(a, b) in edge_list {
            assert!(
                a < n && b < n && a != b,
                "bad edge ({a}, {b}) for {n} qubits"
            );
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
                edges.push((a.min(b), a.max(b)));
            }
        }
        for neighbors in &mut adjacency {
            neighbors.sort_unstable();
        }
        edges.sort_unstable();
        // BFS all-pairs distances.
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (s, row) in dist.iter_mut().enumerate() {
            row[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &w in &adjacency[v] {
                    if row[w] == u32::MAX {
                        row[w] = row[v] + 1;
                        queue.push_back(w);
                    }
                }
            }
            assert!(
                row.iter().all(|&d| d != u32::MAX),
                "coupling map must be connected"
            );
        }
        CouplingMap {
            name: name.into(),
            n,
            adjacency,
            edges,
            dist,
        }
    }

    /// Architecture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The undirected edge list (each edge once, `(low, high)`).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of a qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Shortest-path distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a][b]
    }

    /// Returns `true` when two qubits share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.dist[a][b] == 1
    }

    /// A 1D line of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::new(format!("line-{n}"), n, &edges)
    }

    /// A rows×cols grid with nearest-neighbour edges.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        CouplingMap::new(format!("grid-{rows}x{cols}"), rows * cols, &edges)
    }

    /// A fully connected device (trapped-ion style, e.g. IonQ Forte).
    pub fn all_to_all(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        CouplingMap::new(format!("all-to-all-{n}"), n, &edges)
    }

    /// IBM-style heavy-hex lattice: `rails` horizontal rows of `cols`
    /// qubits, with single connector qubits bridging adjacent rails every
    /// `spacing` columns. With `stagger` set, successive gaps offset their
    /// connector columns by half a spacing (the hexagonal pattern).
    pub fn heavy_hex(name: &str, rails: usize, cols: usize, spacing: usize, stagger: bool) -> Self {
        assert!(
            rails >= 2 && cols >= 2 && spacing >= 2,
            "degenerate heavy-hex"
        );
        let rail_q = |r: usize, c: usize| r * cols + c;
        let mut n = rails * cols;
        let mut edges = Vec::new();
        for r in 0..rails {
            for c in 0..cols.saturating_sub(1) {
                edges.push((rail_q(r, c), rail_q(r, c + 1)));
            }
        }
        for gap in 0..rails - 1 {
            let offset = if stagger {
                (gap % 2) * (spacing / 2)
            } else {
                0
            };
            let mut c = offset;
            while c < cols {
                let connector = n;
                n += 1;
                edges.push((rail_q(gap, c), connector));
                edges.push((connector, rail_q(gap + 1, c)));
                c += spacing;
            }
        }
        CouplingMap::new(name, n, &edges)
    }

    /// The 27-qubit "Montreal"-style heavy-hex device.
    pub fn montreal27() -> Self {
        // 3 rails × 7 qubits + 2 gaps × 3 connectors = 27.
        Self::heavy_hex("Montreal", 3, 7, 3, false)
    }

    /// The 65-qubit "Manhattan"-style heavy-hex device.
    pub fn manhattan65() -> Self {
        // 5 rails × 11 qubits + (3 + 2 + 3 + 2) staggered connectors = 65.
        Self::heavy_hex("Manhattan", 5, 11, 5, true)
    }

    /// Google-style diagonal-grid device with `rows × cols` qubits.
    pub fn sycamore_grid(rows: usize, cols: usize) -> Self {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows.saturating_sub(1) {
            for c in 0..cols {
                edges.push((idx(r, c), idx(r + 1, c)));
                let diag = if r % 2 == 0 { c + 1 } else { c.wrapping_sub(1) };
                if diag < cols {
                    edges.push((idx(r, c), idx(r + 1, diag)));
                }
            }
        }
        CouplingMap::new(format!("Sycamore-{}x{}", rows, cols), rows * cols, &edges)
    }

    /// The 54-qubit "Sycamore"-style device (6 × 9 diagonal grid).
    pub fn sycamore54() -> Self {
        let mut m = Self::sycamore_grid(6, 9);
        m.name = "Sycamore".to_string();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let m = CouplingMap::line(5);
        assert_eq!(m.n_qubits(), 5);
        assert_eq!(m.distance(0, 4), 4);
        assert_eq!(m.edges().len(), 4);
        assert_eq!(m.neighbors(2), &[1, 3]);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let m = CouplingMap::grid(3, 4);
        assert_eq!(m.distance(0, 11), 2 + 3);
        assert!(m.are_adjacent(0, 1));
        assert!(!m.are_adjacent(0, 5));
    }

    #[test]
    fn named_devices_have_published_qubit_counts() {
        assert_eq!(CouplingMap::montreal27().n_qubits(), 27);
        assert_eq!(CouplingMap::manhattan65().n_qubits(), 65);
        assert_eq!(CouplingMap::sycamore54().n_qubits(), 54);
    }

    #[test]
    fn heavy_hex_is_sparse() {
        // The staggered lattice keeps the true heavy-hex degree bound of 3.
        let m = CouplingMap::manhattan65();
        for q in 0..m.n_qubits() {
            assert!(m.neighbors(q).len() <= 3, "qubit {q} has degree > 3");
        }
        // The unstaggered 27-qubit variant allows a few degree-4 junctions
        // where connector columns align across gaps.
        let mtl = CouplingMap::montreal27();
        for q in 0..27 {
            assert!(mtl.neighbors(q).len() <= 4, "qubit {q} has degree > 4");
        }
    }

    #[test]
    fn sycamore_has_diagonal_degree() {
        let m = CouplingMap::sycamore54();
        let max_deg = (0..54).map(|q| m.neighbors(q).len()).max().unwrap();
        assert!((3..=4).contains(&max_deg), "unexpected degree {max_deg}");
    }

    #[test]
    fn all_to_all_distance_is_one() {
        let m = CouplingMap::all_to_all(5);
        assert_eq!(m.distance(0, 4), 1);
        assert_eq!(m.edges().len(), 10);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        CouplingMap::new("bad", 4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "bad edge")]
    fn self_loop_rejected() {
        CouplingMap::new("bad", 2, &[(1, 1)]);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let m = CouplingMap::new("dup", 2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(m.edges().len(), 1);
    }
}
