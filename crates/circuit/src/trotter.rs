//! Trotterized time-evolution synthesis (paper §II-B.2, Figure 2): each
//! Hamiltonian term `exp(i·t·c_j·S_j/n)` becomes a basis-change /
//! CNOT-ladder / RZ / un-ladder snippet, and the full first-order Trotter
//! step is the product over terms.

use hatt_pauli::{Pauli, PauliString, PauliSum, Phase};

use crate::circuit::Circuit;

/// Term-ordering policies for Trotter synthesis. Ordering changes no
/// physics at first order but decides how many CNOTs the optimizer can
/// cancel between adjacent snippets — this is the Paulihedral-style
/// scheduling knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TermOrder {
    /// Use the deterministic order stored in the [`PauliSum`].
    Given,
    /// Sort terms lexicographically by letter sequence so neighbouring
    /// snippets share basis changes and ladder segments (default).
    #[default]
    Lexicographic,
    /// Greedy chaining by support overlap (O(T²); small Hamiltonians).
    GreedyOverlap,
}

/// Synthesizes `exp(-i·(angle/2)·P)` for a Hermitian Pauli string `P`.
///
/// The string's ±1 coefficient is folded into the rotation angle; identity
/// strings produce an empty circuit (global phase).
///
/// # Panics
///
/// Panics when the string is not Hermitian (an `i`-phased string does not
/// generate a unitary rotation of this form).
///
/// # Examples
///
/// ```
/// use hatt_circuit::pauli_evolution;
/// use hatt_pauli::PauliString;
///
/// let p: PauliString = "XZ".parse()?;
/// let c = pauli_evolution(&p, 0.7);
/// // basis change on q1, ladder, rz, unladder, basis undo
/// assert_eq!(c.metrics().cnot, 2);
/// # Ok::<(), hatt_pauli::ParsePauliStringError>(())
/// ```
pub fn pauli_evolution(p: &PauliString, angle: f64) -> Circuit {
    assert!(
        p.is_hermitian(),
        "cannot exponentiate non-Hermitian string {p}"
    );
    let n = p.n_qubits();
    let mut c = Circuit::new(n);
    let support: Vec<usize> = p.support();
    if support.is_empty() {
        return c; // identity: global phase only
    }
    let sign = if p.coefficient_phase() == Phase::MINUS_ONE {
        -1.0
    } else {
        1.0
    };
    // Basis changes: X → H, Y → S† then H.
    for &q in &support {
        match p.op(q) {
            Pauli::X => {
                c.h(q);
            }
            Pauli::Y => {
                c.sdg(q);
                c.h(q);
            }
            _ => {}
        }
    }
    // CNOT ladder onto the last support qubit.
    for w in support.windows(2) {
        c.cnot(w[0], w[1]);
    }
    #[allow(clippy::expect_used)]
    // hatt-lint: allow(panic) -- identity strings returned early above, so support is non-empty
    let target = *support.last().expect("non-empty support");
    c.rz(target, sign * angle);
    // Un-ladder and undo basis changes.
    for w in support.windows(2).rev() {
        c.cnot(w[0], w[1]);
    }
    for &q in &support {
        match p.op(q) {
            Pauli::X => {
                c.h(q);
            }
            Pauli::Y => {
                c.h(q);
                c.s(q);
            }
            _ => {}
        }
    }
    c
}

/// Orders the terms of a Hamiltonian according to `order`, returning
/// `(coefficient, string)` pairs.
pub fn order_terms(h: &PauliSum, order: TermOrder) -> Vec<(hatt_pauli::Complex64, PauliString)> {
    let mut terms: Vec<(hatt_pauli::Complex64, PauliString)> = h.iter().collect();
    match order {
        TermOrder::Given => {}
        TermOrder::Lexicographic => {
            terms.sort_by_key(|(_, s)| s.to_string());
        }
        TermOrder::GreedyOverlap => {
            if terms.len() > 1 {
                let mut chained: Vec<(hatt_pauli::Complex64, PauliString)> =
                    Vec::with_capacity(terms.len());
                chained.push(terms.remove(0));
                while !terms.is_empty() {
                    #[allow(clippy::expect_used)]
                    // hatt-lint: allow(panic) -- `chained` is seeded with one term before this loop
                    let prev = &chained.last().expect("non-empty").1;
                    #[allow(clippy::expect_used)]
                    let (best_idx, _) = terms
                        .iter()
                        .enumerate()
                        .map(|(i, (_, s))| (i, same_letter_overlap(prev, s)))
                        .max_by_key(|&(_, o)| o)
                        // hatt-lint: allow(panic) -- the `while !terms.is_empty()` guard holds here
                        .expect("non-empty");
                    chained.push(terms.remove(best_idx));
                }
                terms = chained;
            }
        }
    }
    terms
}

/// Number of qubits where both strings carry the same non-identity letter
/// (shared basis changes / ladder steps for the optimizer to cancel).
fn same_letter_overlap(a: &PauliString, b: &PauliString) -> usize {
    (0..a.n_qubits())
        .filter(|&q| {
            let (pa, pb) = (a.op(q), b.op(q));
            pa != Pauli::I && pa == pb
        })
        .count()
}

/// Synthesizes the first-order Trotterization of `exp(-i·H·t)` with the
/// given number of steps: `∏_j exp(-i·c_j·t·S_j/steps)` repeated `steps`
/// times.
///
/// # Panics
///
/// Panics when `steps == 0` or the Hamiltonian is not Hermitian (complex
/// coefficients).
///
/// # Examples
///
/// ```
/// use hatt_circuit::{trotter_circuit, TermOrder};
/// use hatt_pauli::{Complex64, PauliSum};
///
/// let mut h = PauliSum::new(2);
/// h.add(Complex64::real(0.5), "ZZ".parse()?);
/// h.add(Complex64::real(0.2), "XI".parse()?);
/// let c = trotter_circuit(&h, 1.0, 2, TermOrder::Lexicographic);
/// assert!(c.metrics().cnot >= 4); // two ZZ snippets
/// # Ok::<(), hatt_pauli::ParsePauliStringError>(())
/// ```
pub fn trotter_circuit(h: &PauliSum, time: f64, steps: usize, order: TermOrder) -> Circuit {
    assert!(steps > 0, "need at least one Trotter step");
    assert!(
        h.is_hermitian(1e-8),
        "cannot Trotterize a non-Hermitian Hamiltonian"
    );
    let terms = order_terms(h, order);
    let mut c = Circuit::new(h.n_qubits());
    let dt = time / steps as f64;
    for _ in 0..steps {
        for (coeff, s) in &terms {
            if s.is_identity() {
                continue;
            }
            // exp(-i c t/n S) = exp(-i (2 c t / n)/2 S)
            c.append(&pauli_evolution(s, 2.0 * coeff.re * dt));
        }
    }
    c
}

/// Synthesizes the *second-order* (Suzuki) Trotterization: each step is
/// the palindrome `∏_j e^{-iθ_j/2 S_j} · ∏_j^{rev} e^{-iθ_j/2 S_j}`,
/// halving the per-step error order at roughly double the gate count
/// (the adjacent mirrored snippets cancel well under [`crate::optimize`]).
///
/// # Panics
///
/// Panics when `steps == 0` or the Hamiltonian is not Hermitian.
pub fn trotter_circuit_order2(h: &PauliSum, time: f64, steps: usize, order: TermOrder) -> Circuit {
    assert!(steps > 0, "need at least one Trotter step");
    assert!(
        h.is_hermitian(1e-8),
        "cannot Trotterize a non-Hermitian Hamiltonian"
    );
    let terms = order_terms(h, order);
    let mut c = Circuit::new(h.n_qubits());
    let dt = time / steps as f64;
    for _ in 0..steps {
        for (coeff, s) in &terms {
            if !s.is_identity() {
                c.append(&pauli_evolution(s, coeff.re * dt));
            }
        }
        for (coeff, s) in terms.iter().rev() {
            if !s.is_identity() {
                c.append(&pauli_evolution(s, coeff.re * dt));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Complex64;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid string")
    }

    #[test]
    fn single_z_is_a_bare_rz() {
        let c = pauli_evolution(&ps("IZ"), 0.4);
        assert_eq!(c.len(), 1);
        assert_eq!(c.metrics().cnot, 0);
    }

    #[test]
    fn figure_2_snippet_structure() {
        // exp(itc·XYIZ): basis changes on q3 (H) and q2 (S†,H), ladder
        // over support {0, 2, 3}, rz, then mirrors.
        let c = pauli_evolution(&ps("XYIZ"), 1.0);
        let m = c.metrics();
        assert_eq!(m.cnot, 4); // 2 ladder + 2 unladder
                               // 1 H + 2 (S†,H) before, mirrored after, plus rz = 7 singles.
        assert_eq!(m.single_qubit, 7);
    }

    #[test]
    fn identity_gives_empty_circuit() {
        let c = pauli_evolution(&PauliString::identity(3), 0.5);
        assert!(c.is_empty());
    }

    #[test]
    fn negative_coefficient_flips_angle() {
        use crate::gate::Gate;
        let minus_z = PauliString::single(1, 0, Pauli::Z).times_phase(Phase::MINUS_ONE);
        let c = pauli_evolution(&minus_z, 0.8);
        assert_eq!(c.gates()[0], Gate::Rz(0, -0.8));
    }

    #[test]
    #[should_panic(expected = "non-Hermitian")]
    fn phased_string_rejected() {
        let i_z = PauliString::single(1, 0, Pauli::Z).times_phase(Phase::I);
        let _ = pauli_evolution(&i_z, 1.0);
    }

    #[test]
    fn trotter_repeats_steps() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("Z"));
        let one = trotter_circuit(&h, 1.0, 1, TermOrder::Given);
        let four = trotter_circuit(&h, 1.0, 4, TermOrder::Given);
        assert_eq!(four.len(), 4 * one.len());
    }

    #[test]
    fn lexicographic_ordering_groups_similar_terms() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.0), ps("XX"));
        h.add(Complex64::real(1.0), ps("ZZ"));
        h.add(Complex64::real(1.0), ps("XY"));
        let terms = order_terms(&h, TermOrder::Lexicographic);
        let names: Vec<String> = terms.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(names, vec!["XX", "XY", "ZZ"]);
    }

    #[test]
    fn greedy_overlap_chains_by_shared_letters() {
        let mut h = PauliSum::new(3);
        h.add(Complex64::real(1.0), ps("XXI"));
        h.add(Complex64::real(1.0), ps("ZZZ"));
        h.add(Complex64::real(1.0), ps("XXZ"));
        let terms = order_terms(&h, TermOrder::GreedyOverlap);
        let names: Vec<String> = terms.iter().map(|(_, s)| s.to_string()).collect();
        // The deterministic first term is ZZZ (symplectic key order); its
        // best overlap is XXZ (shared Z on qubit 0), leaving XXI last.
        assert_eq!(names, vec!["ZZZ", "XXZ", "XXI"]);
    }

    #[test]
    #[should_panic(expected = "at least one Trotter step")]
    fn zero_steps_rejected() {
        let h = PauliSum::new(1);
        let _ = trotter_circuit(&h, 1.0, 0, TermOrder::Given);
    }

    #[test]
    fn order2_is_a_palindrome_of_half_steps() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(0.4), ps("ZZ"));
        h.add(Complex64::real(0.3), ps("XI"));
        let c2 = trotter_circuit_order2(&h, 1.0, 1, TermOrder::Given);
        // Two mirrored half-step sweeps: twice the snippets of one sweep.
        let c1 = trotter_circuit(&h, 1.0, 1, TermOrder::Given);
        assert_eq!(c2.len(), 2 * c1.len());
    }

    #[test]
    fn order2_on_commuting_terms_equals_order1() {
        use crate::passes::optimize;
        // For mutually commuting terms both orders realize exactly e^{-iHt};
        // the optimized circuits must implement the same rotations in total.
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(0.4), ps("ZZ"));
        h.add(Complex64::real(0.3), ps("ZI"));
        let c1 = optimize(&trotter_circuit(&h, 1.0, 1, TermOrder::Given));
        let c2 = optimize(&trotter_circuit_order2(&h, 1.0, 1, TermOrder::Given));
        // After optimization the mirrored half rotations fuse.
        assert_eq!(c1.metrics().cnot, c2.metrics().cnot);
    }
}
