//! Property tests for the Clifford tableau and circuit plumbing that do
//! not need a state-vector simulator: random Clifford circuits must
//! satisfy `C · C⁻¹ = I` at the tableau level, conjugation must be an
//! algebra automorphism, and the synthesized inverse must always reset
//! the frame.

use hatt_circuit::{Circuit, CliffordTableau, Gate};
use hatt_pauli::{Pauli, PauliString};
use proptest::prelude::*;

fn arb_clifford_gate(n: usize) -> impl Strategy<Value = Gate> {
    (0usize..5, 0usize..n, 0usize..n).prop_map(move |(kind, a, b)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Gate::H(a),
            1 => Gate::S(a),
            2 => Gate::Sdg(a),
            3 => Gate::Cnot {
                control: a,
                target: b,
            },
            _ => Gate::Swap(a, b),
        }
    })
}

fn arb_clifford_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_clifford_gate(n), 1..len)
        .prop_map(move |gates| Circuit::from_gates(n, gates))
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0usize..4, n).prop_map(move |ops| {
        let pairs: Vec<(usize, Pauli)> = ops
            .into_iter()
            .enumerate()
            .map(|(q, k)| (q, Pauli::ALL[k]))
            .collect();
        PauliString::from_ops(pairs.len(), &pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn circuit_inverse_resets_tableau(c in (2usize..5).prop_flat_map(|n| arb_clifford_circuit(n, 24))) {
        let mut t = CliffordTableau::identity(c.n_qubits());
        t.apply_circuit(&c);
        t.apply_circuit(&c.inverse());
        prop_assert!(t.is_identity(), "C · C⁻¹ ≠ I for {c}");
    }

    #[test]
    fn synthesized_inverse_resets_any_frame(
        c in (2usize..5).prop_flat_map(|n| arb_clifford_circuit(n, 24))
    ) {
        let mut t = CliffordTableau::identity(c.n_qubits());
        t.apply_circuit(&c);
        let inv = t.synthesize_inverse();
        let mut check = t.clone();
        check.apply_circuit(&inv);
        prop_assert!(check.is_identity(), "synthesized inverse failed for {c}");
        // The synthesized inverse is O(n²) gates, never a history replay.
        prop_assert!(inv.len() <= 24 * c.n_qubits() * c.n_qubits() + 8);
    }

    #[test]
    fn conjugation_is_an_automorphism(
        (c, a, b) in (2usize..4).prop_flat_map(|n| {
            (arb_clifford_circuit(n, 16), arb_string(n), arb_string(n))
        })
    ) {
        let mut t = CliffordTableau::identity(c.n_qubits());
        t.apply_circuit(&c);
        // Products map to products…
        prop_assert_eq!(t.image(&a.mul(&b)), t.image(&a).mul(&t.image(&b)));
        // …and commutation structure is preserved.
        prop_assert_eq!(
            a.commutes_with(&b),
            t.image(&a).commutes_with(&t.image(&b))
        );
        // Weights may change, but Hermiticity cannot.
        prop_assert_eq!(a.is_hermitian(), t.image(&a).is_hermitian());
    }

    #[test]
    fn metrics_are_consistent(c in (2usize..6).prop_flat_map(|n| arb_clifford_circuit(n, 40))) {
        let m = c.metrics();
        prop_assert_eq!(m.total, c.len());
        prop_assert!(m.depth <= swap_aware_len(&c));
        prop_assert!(m.depth >= 1);
        // Decomposing SWAPs preserves the CNOT metric.
        let mut d = c.clone();
        d.decompose_swaps();
        prop_assert_eq!(d.metrics().cnot, m.cnot);
        prop_assert_eq!(d.metrics().single_qubit, m.single_qubit);
    }

    #[test]
    fn inverse_is_involutive(c in (2usize..5).prop_flat_map(|n| arb_clifford_circuit(n, 20))) {
        prop_assert_eq!(c.inverse().inverse(), c.clone());
    }
}

fn swap_aware_len(c: &Circuit) -> usize {
    c.gates()
        .iter()
        .map(|g| if matches!(g, Gate::Swap(..)) { 3 } else { 1 })
        .sum()
}
