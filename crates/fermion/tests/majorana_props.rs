//! Property tests for the Majorana algebra layer: canonicalization signs,
//! Hermiticity under Hermitization, parity structure, and consistency of
//! the ladder → Majorana expansion.

use hatt_fermion::{FermionOperator, LadderOp, MajoranaSum};
use hatt_pauli::Complex64;
use proptest::prelude::*;

fn arb_ladder(n: usize) -> impl Strategy<Value = LadderOp> {
    (0..n, proptest::bool::ANY).prop_map(|(mode, dagger)| LadderOp { mode, dagger })
}

fn arb_product(n: usize) -> impl Strategy<Value = Vec<LadderOp>> {
    proptest::collection::vec(arb_ladder(n), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hermitized_products_give_hermitian_majorana_sums(
        (n, ops, re, im) in (2usize..6).prop_flat_map(|n| {
            (Just(n), arb_product(n), -1.0f64..1.0, -1.0f64..1.0)
        })
    ) {
        // c·P + conj(c)·P† is Hermitian for any ladder product P.
        let mut h = FermionOperator::new(n);
        let c = Complex64::new(re, im);
        h.add_term(c, ops.clone());
        let rev: Vec<LadderOp> = ops.iter().rev().map(|o| o.adjoint()).collect();
        h.add_term(c.conj(), rev);
        let m = MajoranaSum::from_fermion(&h);
        prop_assert!(m.is_hermitian(1e-9), "failed for {ops:?}");
    }

    #[test]
    fn majorana_indices_stay_canonical(
        (n, ops) in (2usize..6).prop_flat_map(|n| (Just(n), arb_product(n)))
    ) {
        let mut h = FermionOperator::new(n);
        h.add_term(Complex64::ONE, ops);
        let m = MajoranaSum::from_fermion(&h);
        for (indices, coeff) in m.iter() {
            // Sorted, unique, in range.
            prop_assert!(indices.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(indices.iter().all(|&i| (i as usize) < 2 * n));
            prop_assert!(coeff.abs() > 0.0);
        }
    }

    #[test]
    fn swapping_adjacent_distinct_majoranas_flips_sign(
        (n, i, j) in (3usize..8).prop_flat_map(|n| (Just(n), 0..2*n as u32, 0..2*n as u32))
    ) {
        prop_assume!(i != j);
        let mut a = MajoranaSum::new(n);
        a.add(Complex64::ONE, &[i, j]);
        let mut b = MajoranaSum::new(n);
        b.add(-Complex64::ONE, &[j, i]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn squares_cancel_to_identity(
        (n, i) in (2usize..8).prop_flat_map(|n| (Just(n), 0..2*n as u32))
    ) {
        let mut a = MajoranaSum::new(n);
        a.add(Complex64::real(3.0), &[i, i]);
        prop_assert!(a
            .coefficient_of(&[])
            .approx_eq(Complex64::real(3.0), 1e-12));
        prop_assert_eq!(a.n_terms(), 1);
    }

    #[test]
    fn number_operators_commute_via_expansion(
        (n, p, q) in (2usize..6).prop_flat_map(|n| (Just(n), 0..n, 0..n))
    ) {
        // [n_p, n_q] = 0: the Majorana expansions of n_p n_q and n_q n_p
        // must agree exactly.
        let build = |first: usize, second: usize| {
            let mut h = FermionOperator::new(n);
            h.add_term(
                Complex64::ONE,
                vec![
                    LadderOp::create(first),
                    LadderOp::annihilate(first),
                    LadderOp::create(second),
                    LadderOp::annihilate(second),
                ],
            );
            MajoranaSum::from_fermion(&h)
        };
        prop_assert_eq!(build(p, q), build(q, p));
    }

    #[test]
    fn even_products_conserve_parity(
        (n, ops) in (2usize..6).prop_flat_map(|n| (Just(n), arb_product(n)))
    ) {
        let mut h = FermionOperator::new(n);
        h.add_term(Complex64::ONE, ops.clone());
        let m = MajoranaSum::from_fermion(&h);
        if ops.len() % 2 == 0 {
            prop_assert!(m.is_parity_conserving(), "even product broke parity: {ops:?}");
        } else {
            prop_assert!(!m.is_parity_conserving() || m.is_empty());
        }
    }
}
