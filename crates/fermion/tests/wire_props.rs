//! Wire-format property tests: `decode ∘ encode = id` for random
//! Majorana Hamiltonians — both physical ones (from random Hermitian
//! second-quantized operators) and arbitrary term soups.

use hatt_fermion::models::random_hermitian;
use hatt_fermion::wire::{decode_majorana_sum, encode_majorana_sum};
use hatt_fermion::MajoranaSum;
use hatt_pauli::json::Json;
use hatt_pauli::Complex64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn physical_hamiltonians_roundtrip(
        n in 2usize..7,
        one in 1usize..6,
        two in 0usize..5,
        seed in 0u64..1000,
    ) {
        let h = MajoranaSum::from_fermion(&random_hermitian(n, one, two, seed));
        let text = encode_majorana_sum(&h).render();
        let back = decode_majorana_sum(&Json::parse(&text).unwrap()).expect("decode");
        prop_assert_eq!(back, h);
    }

    #[test]
    fn arbitrary_term_soups_roundtrip(
        n in 1usize..7,
        terms in 0usize..14,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = MajoranaSum::new(n);
        for _ in 0..terms {
            let k = rng.gen_range(0usize..5);
            let idx: Vec<u32> = (0..k)
                .map(|_| rng.gen_range(0u32..(2 * n) as u32))
                .collect();
            let c = Complex64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
            if !c.is_zero(1e-9) {
                h.add(c, &idx);
            }
        }
        let back = decode_majorana_sum(&encode_majorana_sum(&h)).expect("decode");
        prop_assert_eq!(&back, &h);
        prop_assert_eq!(back.n_modes(), h.n_modes());
    }
}
