//! Structural Hamiltonian deltas: the edit scripts behind incremental
//! remapping (`Mapper::remap` in `hatt-core`, the `map_delta` service
//! verb).
//!
//! Iterative algorithms — adaptive-VQE operator pools, active-space
//! growth — submit long streams of Hamiltonians that differ from their
//! predecessor by a handful of terms. A [`HamiltonianDelta`] captures
//! exactly that difference as an ordered list of term insertions and
//! removals over a fixed mode count, so downstream layers can rebuild
//! only where term incidence actually changed.
//!
//! The edit semantics are deliberately *strict*: an added term must be
//! absent from the base Hamiltonian and a removed term must be present
//! with the recorded coefficient. Strictness is what makes every delta
//! exactly invertible ([`HamiltonianDelta::inverted`]) and composable
//! ([`HamiltonianDelta::compose`]) — the properties the differential
//! remap harness leans on for its undo/compose sequences.
//!
//! # Examples
//!
//! ```
//! use hatt_fermion::{HamiltonianDelta, MajoranaSum};
//! use hatt_pauli::Complex64;
//!
//! let mut h = MajoranaSum::new(2);
//! h.add(Complex64::ONE, &[0, 1]);
//!
//! let mut delta = HamiltonianDelta::new(2);
//! delta.push_add(Complex64::real(0.5), &[2, 3])?;
//! delta.push_remove(Complex64::ONE, &[0, 1])?;
//!
//! let next = delta.apply(&h)?;
//! assert_eq!(next.n_terms(), 1);
//! // Every delta undoes exactly.
//! assert_eq!(delta.inverted().apply(&next)?, h);
//! # Ok::<(), hatt_fermion::DeltaError>(())
//! ```

use std::fmt;

use hatt_pauli::Complex64;

use crate::majorana::{canonicalize, MajoranaSum, MAJORANA_EPS};

/// One edit in a [`HamiltonianDelta`]: insert or delete a single
/// canonical Majorana monomial.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert a term; the canonical support must be absent from the
    /// Hamiltonian the delta is applied to.
    Add {
        /// Coefficient of the inserted monomial (canonicalization sign
        /// already folded in).
        coeff: Complex64,
        /// Canonical (sorted, pair-cancelled) Majorana index set.
        support: Vec<u32>,
    },
    /// Delete a term; it must be present with (approximately) this
    /// coefficient in the Hamiltonian the delta is applied to.
    Remove {
        /// Coefficient the monomial is expected to carry (used to check
        /// the removal and to restore the term on
        /// [`HamiltonianDelta::inverted`]).
        coeff: Complex64,
        /// Canonical (sorted, pair-cancelled) Majorana index set.
        support: Vec<u32>,
    },
}

impl DeltaOp {
    /// The canonical support the op touches.
    pub fn support(&self) -> &[u32] {
        match self {
            DeltaOp::Add { support, .. } | DeltaOp::Remove { support, .. } => support,
        }
    }

    fn inverted(&self) -> DeltaOp {
        match self {
            DeltaOp::Add { coeff, support } => DeltaOp::Remove {
                coeff: *coeff,
                support: support.clone(),
            },
            DeltaOp::Remove { coeff, support } => DeltaOp::Add {
                coeff: *coeff,
                support: support.clone(),
            },
        }
    }
}

/// Typed error for everything that can go wrong building or applying a
/// [`HamiltonianDelta`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeltaError {
    /// A term index is not a valid Majorana index for the delta's mode
    /// count.
    IndexOutOfRange {
        /// The offending Majorana index.
        index: u32,
        /// The delta's mode count (valid indices are `0..2·n_modes`).
        n_modes: usize,
    },
    /// The delta and the Hamiltonian it was applied to disagree on the
    /// mode count.
    ModeMismatch {
        /// Modes the delta was built for.
        delta: usize,
        /// Modes of the Hamiltonian it was applied to.
        hamiltonian: usize,
    },
    /// A term canonicalized to the identity (empty monomial); mapping
    /// Hamiltonians carry no identity term, so a delta may not either.
    IdentityTerm,
    /// A term coefficient is (numerically) zero, which would make the
    /// edit a structural no-op while claiming to change the term set.
    ZeroCoefficient {
        /// Canonical support of the degenerate term.
        support: Vec<u32>,
    },
    /// An added term is already present in the base Hamiltonian.
    AddedTermPresent {
        /// Canonical support of the colliding term.
        support: Vec<u32>,
    },
    /// A removed term is absent from the base Hamiltonian.
    RemovedTermMissing {
        /// Canonical support of the missing term.
        support: Vec<u32>,
    },
    /// A removed term is present but carries a different coefficient
    /// than the delta recorded — the delta was built against a
    /// different base.
    RemovedTermDiffers {
        /// Canonical support of the mismatched term.
        support: Vec<u32>,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn monomial(support: &[u32]) -> String {
            support.iter().map(|i| format!("M{i}")).collect()
        }
        match self {
            DeltaError::IndexOutOfRange { index, n_modes } => write!(
                f,
                "Majorana index {index} out of range 0..{} for {n_modes} modes",
                2 * n_modes
            ),
            DeltaError::ModeMismatch { delta, hamiltonian } => write!(
                f,
                "delta is over {delta} modes but the Hamiltonian has {hamiltonian}"
            ),
            DeltaError::IdentityTerm => {
                write!(f, "delta term canonicalizes to the identity monomial")
            }
            DeltaError::ZeroCoefficient { support } => {
                write!(f, "delta term {} has a zero coefficient", monomial(support))
            }
            DeltaError::AddedTermPresent { support } => write!(
                f,
                "added term {} is already present in the base Hamiltonian",
                monomial(support)
            ),
            DeltaError::RemovedTermMissing { support } => write!(
                f,
                "removed term {} is absent from the base Hamiltonian",
                monomial(support)
            ),
            DeltaError::RemovedTermDiffers { support } => write!(
                f,
                "removed term {} carries a different coefficient than the delta recorded",
                monomial(support)
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// An ordered edit script over the terms of a [`MajoranaSum`]: the
/// structural difference between two Hamiltonians in a streaming
/// workload.
///
/// Construct with [`new`](HamiltonianDelta::new) and grow with
/// [`push_add`](HamiltonianDelta::push_add) /
/// [`push_remove`](HamiltonianDelta::push_remove); both canonicalize the
/// index sequence (sort, cancel squares, fold the anticommutation sign
/// into the coefficient) so the stored ops always name canonical
/// monomials.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HamiltonianDelta {
    n_modes: usize,
    ops: Vec<DeltaOp>,
}

impl HamiltonianDelta {
    /// Creates an empty delta over `n_modes` fermionic modes.
    pub fn new(n_modes: usize) -> Self {
        HamiltonianDelta {
            n_modes,
            ops: Vec::new(),
        }
    }

    /// Number of fermionic modes the delta is built for.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of edits in the script.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the delta contains no edits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The edits in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    fn canonical_term(
        &self,
        coeff: Complex64,
        indices: &[u32],
    ) -> Result<(Complex64, Vec<u32>), DeltaError> {
        for &i in indices {
            if (i as usize) >= 2 * self.n_modes {
                return Err(DeltaError::IndexOutOfRange {
                    index: i,
                    n_modes: self.n_modes,
                });
            }
        }
        let (sign, support) = canonicalize(indices.to_vec());
        if support.is_empty() {
            return Err(DeltaError::IdentityTerm);
        }
        let coeff = coeff * sign;
        if coeff.is_zero(MAJORANA_EPS) {
            return Err(DeltaError::ZeroCoefficient { support });
        }
        Ok((coeff, support))
    }

    /// Appends a term insertion (indices in any order, repetitions
    /// allowed — canonicalized exactly like [`MajoranaSum::add`]).
    pub fn push_add(&mut self, coeff: Complex64, indices: &[u32]) -> Result<(), DeltaError> {
        let (coeff, support) = self.canonical_term(coeff, indices)?;
        self.ops.push(DeltaOp::Add { coeff, support });
        Ok(())
    }

    /// Appends a term removal; `coeff` must be the coefficient the term
    /// carries in the Hamiltonian the delta will be applied to (it is
    /// checked on [`apply`](HamiltonianDelta::apply) and restored on
    /// [`inverted`](HamiltonianDelta::inverted)).
    pub fn push_remove(&mut self, coeff: Complex64, indices: &[u32]) -> Result<(), DeltaError> {
        let (coeff, support) = self.canonical_term(coeff, indices)?;
        self.ops.push(DeltaOp::Remove { coeff, support });
        Ok(())
    }

    /// Applies the edit script to `prev`, returning the post-delta
    /// Hamiltonian. `prev` is not modified; any failed edit leaves no
    /// partial result behind.
    pub fn apply(&self, prev: &MajoranaSum) -> Result<MajoranaSum, DeltaError> {
        if prev.n_modes() != self.n_modes {
            return Err(DeltaError::ModeMismatch {
                delta: self.n_modes,
                hamiltonian: prev.n_modes(),
            });
        }
        let mut next = prev.clone();
        for op in &self.ops {
            match op {
                DeltaOp::Add { coeff, support } => {
                    if !next.coefficient_of(support).is_zero(MAJORANA_EPS) {
                        return Err(DeltaError::AddedTermPresent {
                            support: support.clone(),
                        });
                    }
                    next.add(*coeff, support);
                }
                DeltaOp::Remove { coeff, support } => match next.remove_term(support) {
                    None => {
                        return Err(DeltaError::RemovedTermMissing {
                            support: support.clone(),
                        })
                    }
                    Some(found) if !found.approx_eq(*coeff, MAJORANA_EPS) => {
                        return Err(DeltaError::RemovedTermDiffers {
                            support: support.clone(),
                        })
                    }
                    Some(_) => {}
                },
            }
        }
        Ok(next)
    }

    /// Concatenates two edit scripts: applying the result equals
    /// applying `self` then `other`.
    pub fn compose(&self, other: &HamiltonianDelta) -> Result<HamiltonianDelta, DeltaError> {
        if other.n_modes != self.n_modes {
            return Err(DeltaError::ModeMismatch {
                delta: self.n_modes,
                hamiltonian: other.n_modes,
            });
        }
        let mut ops = self.ops.clone();
        ops.extend(other.ops.iter().cloned());
        Ok(HamiltonianDelta {
            n_modes: self.n_modes,
            ops,
        })
    }

    /// The exact undo script: edits reversed, insertions and removals
    /// swapped. `d.inverted().apply(&d.apply(&h)?)? == h` for every
    /// Hamiltonian `h` the delta applies to.
    pub fn inverted(&self) -> HamiltonianDelta {
        HamiltonianDelta {
            n_modes: self.n_modes,
            ops: self.ops.iter().rev().map(DeltaOp::inverted).collect(),
        }
    }

    /// The sorted, deduplicated union of every edited term's support —
    /// the Majorana indices (leaf nodes) where term incidence changes,
    /// which seeds the incremental rebuild's affected set.
    pub fn support_touched(&self) -> Vec<u32> {
        let mut touched: Vec<u32> = self
            .ops
            .iter()
            .flat_map(|op| op.support().iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::real(-0.5), &[2, 3]);
        h.add(Complex64::real(0.125), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn apply_adds_and_removes_terms() {
        let h = base();
        let mut d = HamiltonianDelta::new(3);
        d.push_add(Complex64::real(0.25), &[0, 1, 2, 3]).unwrap();
        d.push_remove(Complex64::real(-0.5), &[2, 3]).unwrap();
        let next = d.apply(&h).unwrap();
        assert_eq!(next.n_terms(), 3);
        assert!(next
            .coefficient_of(&[0, 1, 2, 3])
            .approx_eq(Complex64::real(0.25), 1e-12));
        assert!(next.coefficient_of(&[2, 3]).is_zero(1e-12));
        // The base is untouched.
        assert_eq!(h, base());
    }

    #[test]
    fn ops_are_canonicalized_on_push() {
        let mut d = HamiltonianDelta::new(2);
        // M1 M0 = -M0 M1: the sign folds into the stored coefficient.
        d.push_add(Complex64::ONE, &[1, 0]).unwrap();
        match &d.ops()[0] {
            DeltaOp::Add { coeff, support } => {
                assert_eq!(support, &vec![0, 1]);
                assert!(coeff.approx_eq(Complex64::real(-1.0), 1e-12));
            }
            other => panic!("expected Add, got {other:?}"),
        }
        // M2 M3 M2 = -M3.
        d.push_remove(Complex64::ONE, &[2, 3, 2]).unwrap();
        assert_eq!(d.ops()[1].support(), &[3]);
        assert_eq!(d.support_touched(), vec![0, 1, 3]);
    }

    #[test]
    fn strictness_errors_are_typed() {
        let h = base();
        let mut d = HamiltonianDelta::new(3);
        d.push_add(Complex64::ONE, &[0, 1]).unwrap();
        assert_eq!(
            d.apply(&h),
            Err(DeltaError::AddedTermPresent {
                support: vec![0, 1]
            })
        );
        let mut d = HamiltonianDelta::new(3);
        d.push_remove(Complex64::ONE, &[4, 5]).unwrap();
        assert_eq!(
            d.apply(&h),
            Err(DeltaError::RemovedTermMissing {
                support: vec![4, 5]
            })
        );
        let mut d = HamiltonianDelta::new(3);
        d.push_remove(Complex64::ONE, &[2, 3]).unwrap();
        assert_eq!(
            d.apply(&h),
            Err(DeltaError::RemovedTermDiffers {
                support: vec![2, 3]
            })
        );
        assert_eq!(
            HamiltonianDelta::new(2).apply(&h),
            Err(DeltaError::ModeMismatch {
                delta: 2,
                hamiltonian: 3
            })
        );
    }

    #[test]
    fn push_validation_errors_are_typed() {
        let mut d = HamiltonianDelta::new(1);
        assert_eq!(
            d.push_add(Complex64::ONE, &[2]),
            Err(DeltaError::IndexOutOfRange {
                index: 2,
                n_modes: 1
            })
        );
        assert_eq!(
            d.push_add(Complex64::ONE, &[0, 0]),
            Err(DeltaError::IdentityTerm)
        );
        assert_eq!(
            d.push_add(Complex64::ZERO, &[0, 1]),
            Err(DeltaError::ZeroCoefficient {
                support: vec![0, 1]
            })
        );
        assert!(d.is_empty());
    }

    #[test]
    fn inverted_is_an_exact_undo() {
        let h = base();
        let mut d = HamiltonianDelta::new(3);
        d.push_remove(Complex64::new(0.0, 0.5), &[0, 1]).unwrap();
        d.push_add(Complex64::real(2.0), &[0, 1, 4, 5]).unwrap();
        // Re-adding the support just removed, with a new coefficient,
        // exercises the ordering sensitivity of undo.
        d.push_add(Complex64::real(3.0), &[0, 1]).unwrap();
        let next = d.apply(&h).unwrap();
        assert_eq!(d.inverted().apply(&next).unwrap(), h);
    }

    #[test]
    fn compose_equals_sequential_application() {
        let h = base();
        let mut d1 = HamiltonianDelta::new(3);
        d1.push_add(Complex64::real(0.75), &[1, 2]).unwrap();
        let mut d2 = HamiltonianDelta::new(3);
        d2.push_remove(Complex64::real(0.75), &[1, 2]).unwrap();
        d2.push_add(Complex64::real(0.75), &[1, 4]).unwrap();
        let composed = d1.compose(&d2).unwrap();
        assert_eq!(
            composed.apply(&h).unwrap(),
            d2.apply(&d1.apply(&h).unwrap()).unwrap()
        );
        assert_eq!(composed.len(), 3);
        assert!(matches!(
            d1.compose(&HamiltonianDelta::new(2)),
            Err(DeltaError::ModeMismatch { .. })
        ));
    }

    #[test]
    fn display_messages_name_the_monomial() {
        let e = DeltaError::RemovedTermMissing {
            support: vec![2, 3],
        };
        assert!(e.to_string().contains("M2M3"));
        let e = DeltaError::IndexOutOfRange {
            index: 9,
            n_modes: 2,
        };
        assert!(e.to_string().contains("0..4"));
    }
}
