//! # hatt-fermion
//!
//! Fermionic-system substrate for the HATT framework: second-quantized
//! operators, the Majorana preprocessing step of the paper's Algorithm 1,
//! and the three benchmark Hamiltonian families of the evaluation section
//! (electronic structure, Fermi-Hubbard, collective neutrino oscillation).
//!
//! # Example
//!
//! ```
//! use hatt_fermion::{FermionOperator, MajoranaSum};
//! use hatt_pauli::Complex64;
//!
//! // A 2-mode Hamiltonian: H = n_0 + 0.5·(a†_0 a_1 + a†_1 a_0).
//! let mut h = FermionOperator::new(2);
//! h.add_number(Complex64::ONE, 0);
//! h.add_hopping(Complex64::real(0.5), 0, 1);
//!
//! let majorana = MajoranaSum::from_fermion(&h);
//! assert!(majorana.is_hermitian(1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delta;
mod ladder;
mod majorana;
pub mod models;
pub mod wire;

pub use delta::{DeltaError, DeltaOp, HamiltonianDelta};
pub use ladder::{FermionOperator, LadderOp};
pub use majorana::{MajoranaSum, MAJORANA_EPS};
