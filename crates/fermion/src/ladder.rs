//! Second-quantized fermionic operators: sums of creation/annihilation
//! operator products.

use std::fmt;

use hatt_pauli::Complex64;

/// A single ladder operator: `a†_mode` when `dagger` is set, else `a_mode`.
///
/// # Examples
///
/// ```
/// use hatt_fermion::LadderOp;
///
/// let op = LadderOp::create(3);
/// assert!(op.dagger);
/// assert_eq!(op.mode, 3);
/// assert_eq!(op.to_string(), "a†3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LadderOp {
    /// The fermionic mode the operator acts on.
    pub mode: usize,
    /// `true` for the creation operator `a†`, `false` for annihilation `a`.
    pub dagger: bool,
}

impl LadderOp {
    /// The creation operator `a†_mode`.
    pub const fn create(mode: usize) -> Self {
        LadderOp { mode, dagger: true }
    }

    /// The annihilation operator `a_mode`.
    pub const fn annihilate(mode: usize) -> Self {
        LadderOp {
            mode,
            dagger: false,
        }
    }

    /// The Hermitian adjoint (creation ↔ annihilation).
    pub const fn adjoint(self) -> Self {
        LadderOp {
            mode: self.mode,
            dagger: !self.dagger,
        }
    }
}

impl fmt::Display for LadderOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dagger {
            write!(f, "a†{}", self.mode)
        } else {
            write!(f, "a{}", self.mode)
        }
    }
}

/// A second-quantized fermionic operator: a weighted sum of ladder-operator
/// products, e.g. `H_F = c0·a†0a0 + c2·a†0a†1a0a1`.
///
/// Products are stored verbatim (no normal ordering is imposed); the
/// Majorana conversion in [`crate::MajoranaSum`] performs the full
/// anticommutation-aware expansion.
///
/// # Examples
///
/// ```
/// use hatt_fermion::FermionOperator;
/// use hatt_pauli::Complex64;
///
/// // The paper's Equation (3): H_F = a†0 a0 + 2 a†1 a†2 a1 a2.
/// let mut h = FermionOperator::new(3);
/// h.add_one_body(Complex64::ONE, 0, 0);
/// h.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
/// assert_eq!(h.n_terms(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FermionOperator {
    n_modes: usize,
    terms: Vec<(Complex64, Vec<LadderOp>)>,
}

impl FermionOperator {
    /// Creates an empty operator on `n_modes` fermionic modes.
    pub fn new(n_modes: usize) -> Self {
        FermionOperator {
            n_modes,
            terms: Vec::new(),
        }
    }

    /// Number of fermionic modes.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of stored product terms.
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when no terms are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Appends `coeff · op_1 op_2 … op_k` (identity product when empty).
    ///
    /// # Panics
    ///
    /// Panics if any operator's mode is out of range.
    pub fn add_term(&mut self, coeff: Complex64, ops: Vec<LadderOp>) {
        for op in &ops {
            assert!(
                op.mode < self.n_modes,
                "mode {} out of range 0..{}",
                op.mode,
                self.n_modes
            );
        }
        if !coeff.is_zero(0.0) {
            self.terms.push((coeff, ops));
        }
    }

    /// Adds the one-body term `coeff · a†_p a_q`.
    pub fn add_one_body(&mut self, coeff: Complex64, p: usize, q: usize) {
        self.add_term(coeff, vec![LadderOp::create(p), LadderOp::annihilate(q)]);
    }

    /// Adds the two-body term `coeff · a†_p a†_q a_r a_s`.
    pub fn add_two_body(&mut self, coeff: Complex64, p: usize, q: usize, r: usize, s: usize) {
        self.add_term(
            coeff,
            vec![
                LadderOp::create(p),
                LadderOp::create(q),
                LadderOp::annihilate(r),
                LadderOp::annihilate(s),
            ],
        );
    }

    /// Adds the number operator `coeff · n_p = coeff · a†_p a_p`.
    pub fn add_number(&mut self, coeff: Complex64, p: usize) {
        self.add_one_body(coeff, p, p);
    }

    /// Adds `coeff · a†_p a_q + conj(coeff) · a†_q a_p` (a Hermitian hop).
    pub fn add_hopping(&mut self, coeff: Complex64, p: usize, q: usize) {
        self.add_one_body(coeff, p, q);
        self.add_one_body(coeff.conj(), q, p);
    }

    /// The Hermitian adjoint: coefficients conjugate and each product
    /// reverses with every ladder operator daggered.
    pub fn adjoint(&self) -> FermionOperator {
        let mut out = FermionOperator::new(self.n_modes);
        for (c, ops) in &self.terms {
            let rev: Vec<LadderOp> = ops.iter().rev().map(|o| o.adjoint()).collect();
            out.add_term(c.conj(), rev);
        }
        out
    }

    /// Iterator over `(coefficient, product)` terms.
    pub fn iter(&self) -> impl Iterator<Item = (Complex64, &[LadderOp])> + '_ {
        self.terms.iter().map(|(c, ops)| (*c, ops.as_slice()))
    }

    /// Merges another operator into this one.
    ///
    /// # Panics
    ///
    /// Panics if the mode counts differ.
    pub fn add_operator(&mut self, other: &FermionOperator) {
        assert_eq!(self.n_modes, other.n_modes, "mode count mismatch");
        for (c, ops) in &other.terms {
            self.terms.push((*c, ops.clone()));
        }
    }
}

impl fmt::Display for FermionOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, ops)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({c})·")?;
            if ops.is_empty() {
                write!(f, "1")?;
            }
            for op in ops {
                write!(f, "{op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_op_basics() {
        let c = LadderOp::create(2);
        let a = LadderOp::annihilate(2);
        assert_eq!(c.adjoint(), a);
        assert_eq!(a.adjoint(), c);
        assert_eq!(c.to_string(), "a†2");
        assert_eq!(a.to_string(), "a2");
    }

    #[test]
    fn building_terms() {
        let mut h = FermionOperator::new(3);
        h.add_number(Complex64::ONE, 0);
        h.add_hopping(Complex64::real(0.5), 0, 1);
        h.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
        assert_eq!(h.n_terms(), 4);
        assert_eq!(h.n_modes(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut h = FermionOperator::new(1);
        h.add_number(Complex64::ZERO, 0);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mode_bounds_are_checked() {
        let mut h = FermionOperator::new(2);
        h.add_number(Complex64::ONE, 2);
    }

    #[test]
    fn adjoint_reverses_and_daggers() {
        let mut h = FermionOperator::new(2);
        h.add_one_body(Complex64::new(0.0, 1.0), 0, 1);
        let adj = h.adjoint();
        let (c, ops) = adj.iter().next().unwrap();
        assert_eq!(c, Complex64::new(0.0, -1.0));
        assert_eq!(ops, &[LadderOp::create(1), LadderOp::annihilate(0)]);
    }

    #[test]
    fn display_smoke() {
        let mut h = FermionOperator::new(2);
        assert_eq!(h.to_string(), "0");
        h.add_one_body(Complex64::ONE, 0, 1);
        assert!(h.to_string().contains("a†0"));
        assert!(h.to_string().contains("a1"));
    }
}
