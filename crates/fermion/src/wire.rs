//! `hatt-wire/1` codec for Majorana Hamiltonians — the payload every
//! `hatt-service` `MapRequest` item carries over the socket.
//!
//! A [`MajoranaSum`] is encoded as its canonical term list (sorted index
//! sets with exact complex coefficients):
//!
//! ```json
//! {"format":"hatt-wire/1","kind":"majorana_sum","payload":{
//!   "n_modes": 2,
//!   "terms": [{"re":1.0,"im":0.0,"idx":[0,1]}]
//! }}
//! ```
//!
//! Decoding validates every index against the declared mode count and
//! returns a typed [`WireError`] on any malformed document — no panic is
//! reachable from wire input.
//!
//! # Examples
//!
//! ```
//! use hatt_fermion::wire::{decode_majorana_sum, encode_majorana_sum};
//! use hatt_fermion::MajoranaSum;
//! use hatt_pauli::json::Json;
//! use hatt_pauli::Complex64;
//!
//! let mut h = MajoranaSum::new(2);
//! h.add(Complex64::new(0.0, 0.5), &[0, 1]);
//! h.add(Complex64::real(0.25), &[0, 1, 2, 3]);
//!
//! let text = encode_majorana_sum(&h).render();
//! let back = decode_majorana_sum(&Json::parse(&text)?)?;
//! assert_eq!(back, h);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use hatt_pauli::json::Json;
use hatt_pauli::wire::{
    as_arr, as_obj, as_str, as_usize, checked_modes, coeff_fields, decode_coeff, envelope, field,
    open_envelope, WireError,
};

use crate::{DeltaOp, HamiltonianDelta, MajoranaSum};

const KIND: &str = "majorana_sum";
const KIND_DELTA: &str = "hamiltonian_delta";

/// Encodes a [`MajoranaSum`] as a `hatt-wire/1` envelope.
pub fn encode_majorana_sum(h: &MajoranaSum) -> Json {
    envelope(KIND, majorana_sum_payload(h))
}

/// The bare (un-enveloped) payload of a Hamiltonian — composed into
/// larger documents by `hatt-service` request lines.
pub fn majorana_sum_payload(h: &MajoranaSum) -> Json {
    let terms = h
        .iter()
        .map(|(idx, c)| {
            let mut pairs = coeff_fields(c).to_vec();
            pairs.push((
                "idx".into(),
                Json::Arr(idx.iter().map(|&i| Json::int(u64::from(i))).collect()),
            ));
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![
        ("n_modes".into(), Json::int(h.n_modes() as u64)),
        ("terms".into(), Json::Arr(terms)),
    ])
}

/// Decodes a [`MajoranaSum`] envelope, validating every Majorana index
/// against the declared mode count.
pub fn decode_majorana_sum(v: &Json) -> Result<MajoranaSum, WireError> {
    decode_majorana_sum_payload(open_envelope(v, KIND)?)
}

/// Decodes a bare Hamiltonian payload (see [`majorana_sum_payload`]).
pub fn decode_majorana_sum_payload(v: &Json) -> Result<MajoranaSum, WireError> {
    const CTX: &str = "majorana_sum payload";
    let pairs = as_obj(v, CTX)?;
    let n = checked_modes(as_usize(field(pairs, "n_modes", CTX)?, CTX)?, CTX)?;
    let mut sum = MajoranaSum::new(n);
    for term in as_arr(field(pairs, "terms", CTX)?, CTX)? {
        const TCTX: &str = "majorana_sum term";
        let tp = as_obj(term, TCTX)?;
        let coeff = decode_coeff(tp, TCTX)?;
        let mut indices = Vec::new();
        for idx in as_arr(field(tp, "idx", TCTX)?, TCTX)? {
            let i = as_usize(idx, TCTX)?;
            if i >= 2 * n {
                return Err(WireError::ModeMismatch {
                    context: "majorana_sum term index",
                    declared: n,
                    required: i / 2 + 1,
                });
            }
            indices.push(i as u32);
        }
        sum.add(coeff, &indices);
    }
    Ok(sum)
}

/// Encodes a [`HamiltonianDelta`] as a `hatt-wire/1` envelope.
pub fn encode_hamiltonian_delta(d: &HamiltonianDelta) -> Json {
    envelope(KIND_DELTA, hamiltonian_delta_payload(d))
}

/// The bare (un-enveloped) payload of a structural delta — composed
/// into `map_delta` request lines by `hatt-service`:
///
/// ```json
/// {"n_modes": 2,
///  "ops": [{"op":"add","re":0.5,"im":0.0,"idx":[2,3]},
///          {"op":"remove","re":1.0,"im":0.0,"idx":[0,1]}]}
/// ```
pub fn hamiltonian_delta_payload(d: &HamiltonianDelta) -> Json {
    let ops = d
        .ops()
        .iter()
        .map(|op| {
            let (tag, coeff, support) = match op {
                DeltaOp::Add { coeff, support } => ("add", coeff, support),
                DeltaOp::Remove { coeff, support } => ("remove", coeff, support),
            };
            let mut pairs = vec![("op".to_string(), Json::str(tag))];
            pairs.extend(coeff_fields(*coeff));
            pairs.push((
                "idx".into(),
                Json::Arr(support.iter().map(|&i| Json::int(u64::from(i))).collect()),
            ));
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![
        ("n_modes".into(), Json::int(d.n_modes() as u64)),
        ("ops".into(), Json::Arr(ops)),
    ])
}

/// Decodes a [`HamiltonianDelta`] envelope.
pub fn decode_hamiltonian_delta(v: &Json) -> Result<HamiltonianDelta, WireError> {
    decode_hamiltonian_delta_payload(open_envelope(v, KIND_DELTA)?)
}

/// Decodes a bare delta payload (see [`hamiltonian_delta_payload`]),
/// validating every index and re-running the delta's own construction
/// checks (identity terms, zero coefficients) so a decoded delta is as
/// well-formed as a locally built one.
pub fn decode_hamiltonian_delta_payload(v: &Json) -> Result<HamiltonianDelta, WireError> {
    const CTX: &str = "hamiltonian_delta payload";
    let pairs = as_obj(v, CTX)?;
    let n = checked_modes(as_usize(field(pairs, "n_modes", CTX)?, CTX)?, CTX)?;
    let mut delta = HamiltonianDelta::new(n);
    for op in as_arr(field(pairs, "ops", CTX)?, CTX)? {
        const OCTX: &str = "hamiltonian_delta op";
        let op_pairs = as_obj(op, OCTX)?;
        let tag = as_str(field(op_pairs, "op", OCTX)?, OCTX)?;
        let coeff = decode_coeff(op_pairs, OCTX)?;
        let mut indices = Vec::new();
        for idx in as_arr(field(op_pairs, "idx", OCTX)?, OCTX)? {
            let i = as_usize(idx, OCTX)?;
            if i >= 2 * n {
                return Err(WireError::ModeMismatch {
                    context: "hamiltonian_delta op index",
                    declared: n,
                    required: i / 2 + 1,
                });
            }
            indices.push(i as u32);
        }
        let pushed = match tag {
            "add" => delta.push_add(coeff, &indices),
            "remove" => delta.push_remove(coeff, &indices),
            other => {
                return Err(WireError::schema(
                    OCTX,
                    format!("unknown op {other:?} (expected \"add\" or \"remove\")"),
                ))
            }
        };
        pushed.map_err(|e| WireError::schema(OCTX, format!("{e}")))?;
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Complex64;

    fn sample() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::new(-0.5, 0.0), &[2, 3]);
        h.add(Complex64::real(0.125), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn round_trip_preserves_terms_and_structure() {
        let h = sample();
        let back = decode_majorana_sum(&encode_majorana_sum(&h)).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.n_modes(), 3);
    }

    #[test]
    fn out_of_range_index_is_a_mode_mismatch() {
        let doc = Json::parse(
            r#"{"format":"hatt-wire/1","kind":"majorana_sum","payload":
                {"n_modes":1,"terms":[{"re":1,"im":0,"idx":[0,2]}]}}"#,
        )
        .unwrap();
        match decode_majorana_sum(&doc) {
            Err(WireError::ModeMismatch {
                declared, required, ..
            }) => {
                assert_eq!(declared, 1);
                assert_eq!(required, 2);
            }
            other => panic!("expected ModeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_canonical_wire_terms_are_canonicalized_on_decode() {
        // M1 M0 = -M0 M1: legal on the wire, folded on decode.
        let doc = Json::parse(
            r#"{"format":"hatt-wire/1","kind":"majorana_sum","payload":
                {"n_modes":1,"terms":[{"re":1,"im":0,"idx":[1,0]}]}}"#,
        )
        .unwrap();
        let h = decode_majorana_sum(&doc).unwrap();
        assert!(h
            .coefficient_of(&[0, 1])
            .approx_eq(Complex64::real(-1.0), 1e-12));
    }

    #[test]
    fn delta_round_trips_bit_identically() {
        let mut d = HamiltonianDelta::new(3);
        d.push_add(Complex64::new(0.25, -0.5), &[0, 1, 4, 5])
            .unwrap();
        d.push_remove(Complex64::real(0.125), &[2, 3]).unwrap();
        let text = encode_hamiltonian_delta(&d).render();
        let back = decode_hamiltonian_delta(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn malformed_delta_documents_fail_with_typed_errors() {
        for payload in [
            r#"{"ops":[]}"#,
            r#"{"n_modes":1,"ops":[{"op":"warp","re":1,"im":0,"idx":[0]}]}"#,
            r#"{"n_modes":1,"ops":[{"op":"add","re":1,"im":0,"idx":[2]}]}"#,
            r#"{"n_modes":1,"ops":[{"op":"add","re":0,"im":0,"idx":[0]}]}"#,
            r#"{"n_modes":1,"ops":[{"op":"add","re":1,"im":0,"idx":[0,0]}]}"#,
            r#"{"n_modes":1,"ops":[{"op":"add","re":1,"im":0}]}"#,
            r#"{"n_modes":1,"ops":{}}"#,
        ] {
            let doc = Json::parse(&format!(
                r#"{{"format":"hatt-wire/1","kind":"hamiltonian_delta","payload":{payload}}}"#
            ))
            .unwrap();
            assert!(decode_hamiltonian_delta(&doc).is_err(), "{payload}");
        }
    }

    #[test]
    fn malformed_documents_fail_with_typed_errors() {
        for payload in [
            r#"{"terms":[]}"#,
            r#"{"n_modes":"two","terms":[]}"#,
            r#"{"n_modes":1,"terms":[{"re":1,"im":0}]}"#,
            r#"{"n_modes":1,"terms":[{"re":1,"im":0,"idx":[-1]}]}"#,
            r#"{"n_modes":1,"terms":[{"re":1,"im":0,"idx":"01"}]}"#,
        ] {
            let doc = Json::parse(&format!(
                r#"{{"format":"hatt-wire/1","kind":"majorana_sum","payload":{payload}}}"#
            ))
            .unwrap();
            assert!(decode_majorana_sum(&doc).is_err(), "{payload}");
        }
    }
}
