//! Collective neutrino oscillation Hamiltonians (the paper's third
//! benchmark family, §V-A.3), formulated on a 1D momentum lattice:
//!
//! ```text
//!     H_ν = Σ_i Σ_a sqrt(p_i² + m_a²) a†_{a,i} a_{a,i}
//!         + Σ_{i1,i2,i3} Σ_{a,b} C_{i1,i2,i3} a†_{a,i1} a_{a,i3} a†_{b,i2} a_{b,i4}
//! ```
//!
//! with momentum conservation fixing `i4 = i1 + i2 − i3` and the two-body
//! coupling `C = μ·(p_{i2} − p_{i1})·(p_{i4} − p_{i3})`.
//!
//! The paper's cases are labelled `sites × flavors` (e.g. `3 × 2F`) with
//! mode counts `2·sites·flavors`; the factor 2 accounts for the two
//! helicity components per (momentum, flavor) pair. Modes are indexed
//! `mode(i, a, h) = h·(sites·flavors) + i·flavors + a`.

use hatt_pauli::Complex64;

use crate::ladder::FermionOperator;

/// A collective-neutrino-oscillation model specification.
///
/// # Examples
///
/// ```
/// use hatt_fermion::models::NeutrinoModel;
///
/// let m = NeutrinoModel::new(3, 2); // the paper's "3 × 2F" case
/// assert_eq!(m.n_modes(), 12);
/// let h = m.hamiltonian();
/// assert_eq!(h.n_modes(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeutrinoModel {
    sites: usize,
    flavors: usize,
    /// Two-body coupling strength μ.
    pub mu: f64,
    /// Static masses m_a, one per flavor.
    pub masses: Vec<f64>,
    /// Momenta p_i, one per lattice site.
    pub momenta: Vec<f64>,
}

impl NeutrinoModel {
    /// Creates the model with the default linear momentum lattice
    /// `p_i = (i+1)/sites` and mass splittings `m_a = 0.1·(a+1)`.
    ///
    /// # Panics
    ///
    /// Panics when `sites` or `flavors` is zero.
    pub fn new(sites: usize, flavors: usize) -> Self {
        assert!(
            sites > 0 && flavors > 0,
            "sites and flavors must be positive"
        );
        NeutrinoModel {
            sites,
            flavors,
            mu: 0.5,
            masses: (0..flavors).map(|a| 0.1 * (a + 1) as f64).collect(),
            momenta: (0..sites).map(|i| (i + 1) as f64 / sites as f64).collect(),
        }
    }

    /// Number of momentum-lattice sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Number of neutrino flavors.
    pub fn flavors(&self) -> usize {
        self.flavors
    }

    /// Number of fermionic modes: `2 · sites · flavors`.
    pub fn n_modes(&self) -> usize {
        2 * self.sites * self.flavors
    }

    /// Case label in the paper's `sites × flavorsF` form.
    pub fn label(&self) -> String {
        format!("{}x{}F", self.sites, self.flavors)
    }

    fn mode(&self, site: usize, flavor: usize, helicity: usize) -> usize {
        helicity * self.sites * self.flavors + site * self.flavors + flavor
    }

    /// Builds the second-quantized Hamiltonian.
    pub fn hamiltonian(&self) -> FermionOperator {
        let mut op = FermionOperator::new(self.n_modes());
        // Kinetic term, diagonal in every quantum number.
        for i in 0..self.sites {
            for a in 0..self.flavors {
                let e = (self.momenta[i].powi(2) + self.masses[a].powi(2)).sqrt();
                for h in 0..2 {
                    op.add_number(Complex64::real(e), self.mode(i, a, h));
                }
            }
        }
        // Momentum-conserving two-body forward scattering within each
        // helicity sector.
        for i1 in 0..self.sites {
            for i2 in 0..self.sites {
                for i3 in 0..self.sites {
                    let i4s = i1 + i2;
                    if i4s < i3 {
                        continue;
                    }
                    let i4 = i4s - i3;
                    if i4 >= self.sites {
                        continue;
                    }
                    let c = self.mu
                        * (self.momenta[i2] - self.momenta[i1])
                        * (self.momenta[i4] - self.momenta[i3]);
                    if c == 0.0 {
                        continue;
                    }
                    for a in 0..self.flavors {
                        for b in 0..self.flavors {
                            for h in 0..2 {
                                let (m1, m3) = (self.mode(i1, a, h), self.mode(i3, a, h));
                                let (m2, m4) = (self.mode(i2, b, h), self.mode(i4, b, h));
                                // a†_{a,i1} a_{a,i3} a†_{b,i2} a_{b,i4},
                                // Hermitized by the symmetric (i3,i4) sum.
                                op.add_term(
                                    Complex64::real(0.5 * c),
                                    vec![
                                        crate::LadderOp::create(m1),
                                        crate::LadderOp::annihilate(m3),
                                        crate::LadderOp::create(m2),
                                        crate::LadderOp::annihilate(m4),
                                    ],
                                );
                                op.add_term(
                                    Complex64::real(0.5 * c),
                                    vec![
                                        crate::LadderOp::create(m3),
                                        crate::LadderOp::annihilate(m1),
                                        crate::LadderOp::create(m4),
                                        crate::LadderOp::annihilate(m2),
                                    ],
                                );
                            }
                        }
                    }
                }
            }
        }
        op
    }
}

/// The Table III case roster with the paper's mode counts.
pub fn neutrino_catalog() -> Vec<NeutrinoModel> {
    [
        (3, 2),
        (4, 2),
        (3, 3),
        (5, 2),
        (4, 3),
        (6, 2),
        (7, 2),
        (5, 3),
        (6, 3),
        (7, 3),
    ]
    .into_iter()
    .map(|(s, f)| NeutrinoModel::new(s, f))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majorana::MajoranaSum;

    #[test]
    fn mode_counts_match_paper_table3() {
        let modes: Vec<usize> = neutrino_catalog().iter().map(|m| m.n_modes()).collect();
        assert_eq!(modes, vec![12, 16, 18, 20, 24, 24, 28, 30, 36, 42]);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(NeutrinoModel::new(3, 2).label(), "3x2F");
        assert_eq!(NeutrinoModel::new(7, 3).label(), "7x3F");
    }

    #[test]
    fn hamiltonian_is_hermitian_and_parity_conserving() {
        let op = NeutrinoModel::new(3, 2).hamiltonian();
        let m = MajoranaSum::from_fermion(&op);
        assert!(m.is_hermitian(1e-10), "neutrino Hamiltonian not Hermitian");
        assert!(m.is_parity_conserving());
    }

    #[test]
    fn kinetic_energies_are_relativistic() {
        let m = NeutrinoModel::new(2, 2);
        let e = (m.momenta[0].powi(2) + m.masses[1].powi(2)).sqrt();
        assert!(e > m.momenta[0]);
    }

    #[test]
    fn two_body_terms_exist() {
        let op = NeutrinoModel::new(3, 2).hamiltonian();
        let four_body = op.iter().filter(|(_, ops)| ops.len() == 4).count();
        assert!(four_body > 0, "expected momentum-conserving interactions");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_flavors_rejected() {
        NeutrinoModel::new(3, 0);
    }
}
