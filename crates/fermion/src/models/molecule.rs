//! Electronic-structure model Hamiltonians (the paper's first benchmark
//! family, §V-A.1):
//!
//! ```text
//!     H_e = Σ_pq h_pq a†_p a_q + ½ Σ_pqrs h_pqrs a†_p a†_q a_r a_s
//! ```
//!
//! built from spatial-orbital integrals expanded over spin orbitals in
//! *block ordering* (all spin-up modes, then all spin-down), matching the
//! Qiskit Nature convention the paper used.
//!
//! The H2/STO-3G integrals are the published values (Seeley, Richard &
//! Love, J. Chem. Phys. 137, 224109 (2012)), so the exact electronic
//! ground energy ≈ −1.851 Ha is available as a reference for the noise
//! experiments. Larger molecules use *seeded synthetic integrals* with the
//! full 8-fold permutational symmetry of real two-electron integrals: the
//! Pauli-weight/gate-count metrics depend on which monomials exist (the
//! operator structure), not on the precise coefficient values. See
//! DESIGN.md §3 for the substitution rationale.

use hatt_pauli::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ladder::FermionOperator;

/// Spatial-orbital one- and two-electron integrals with 8-fold symmetric
/// storage (chemist notation `(pq|rs)`).
///
/// # Examples
///
/// ```
/// use hatt_fermion::models::MolecularIntegrals;
///
/// let h2 = MolecularIntegrals::h2_sto3g();
/// assert_eq!(h2.n_orbitals(), 2);
/// let op = h2.to_fermion_operator();
/// assert_eq!(op.n_modes(), 4); // spin orbitals
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MolecularIntegrals {
    n: usize,
    h1: Vec<f64>,
    eri: Vec<f64>,
}

impl MolecularIntegrals {
    /// Creates all-zero integrals for `n_orbitals` spatial orbitals.
    pub fn new(n_orbitals: usize) -> Self {
        MolecularIntegrals {
            n: n_orbitals,
            h1: vec![0.0; n_orbitals * n_orbitals],
            eri: vec![0.0; n_orbitals.pow(4)],
        }
    }

    /// Number of spatial orbitals.
    #[inline]
    pub fn n_orbitals(&self) -> usize {
        self.n
    }

    /// Number of spin orbitals (fermionic modes) of the expanded operator.
    #[inline]
    pub fn n_spin_orbitals(&self) -> usize {
        2 * self.n
    }

    fn idx2(&self, p: usize, q: usize) -> usize {
        p * self.n + q
    }

    fn idx4(&self, p: usize, q: usize, r: usize, s: usize) -> usize {
        ((p * self.n + q) * self.n + r) * self.n + s
    }

    /// One-electron integral `h_pq`.
    pub fn h1(&self, p: usize, q: usize) -> f64 {
        self.h1[self.idx2(p, q)]
    }

    /// Two-electron integral `(pq|rs)` in chemist notation.
    pub fn eri(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        self.eri[self.idx4(p, q, r, s)]
    }

    /// Sets `h_pq = h_qp = value` (real orbitals).
    pub fn set_h1(&mut self, p: usize, q: usize, value: f64) {
        let (a, b) = (self.idx2(p, q), self.idx2(q, p));
        self.h1[a] = value;
        self.h1[b] = value;
    }

    /// Sets `(pq|rs)` and its seven symmetry partners
    /// `(qp|rs), (pq|sr), (qp|sr), (rs|pq), (sr|pq), (rs|qp), (sr|qp)`.
    pub fn set_eri(&mut self, p: usize, q: usize, r: usize, s: usize, value: f64) {
        for (a, b, c, d) in [
            (p, q, r, s),
            (q, p, r, s),
            (p, q, s, r),
            (q, p, s, r),
            (r, s, p, q),
            (s, r, p, q),
            (r, s, q, p),
            (s, r, q, p),
        ] {
            let i = self.idx4(a, b, c, d);
            self.eri[i] = value;
        }
    }

    /// The published H2/STO-3G integrals at the equilibrium bond length
    /// (0.7414 Å): `σ_g` and `σ_u` molecular orbitals.
    pub fn h2_sto3g() -> Self {
        let mut m = MolecularIntegrals::new(2);
        m.set_h1(0, 0, -1.252477);
        m.set_h1(1, 1, -0.475934);
        m.set_eri(0, 0, 0, 0, 0.674493);
        m.set_eri(1, 1, 1, 1, 0.697397);
        m.set_eri(0, 0, 1, 1, 0.663472);
        m.set_eri(0, 1, 0, 1, 0.181287);
        m
    }

    /// Seeded synthetic integrals with realistic structure: diagonal-
    /// dominant `h1` with exponentially decaying off-diagonals, and
    /// 8-fold-symmetric two-electron integrals that are *sparse* the way
    /// real molecular integrals are — Coulomb/exchange classes
    /// (`(pp|qq)`, `(pq|pq)`) always survive, while four-distinct-orbital
    /// classes are mostly zeroed, mimicking point-group selection rules.
    /// Deterministic in `seed`.
    pub fn synthetic(n_orbitals: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut m = MolecularIntegrals::new(n_orbitals);
        for p in 0..n_orbitals {
            // Orbital energies deepen for core orbitals.
            let e = -(0.4 + 2.0 / (1.0 + p as f64) + rng.gen_range(0.0..0.3));
            m.set_h1(p, p, e);
            for q in (p + 1)..n_orbitals {
                // Molecular orbitals are delocalized: no index-distance
                // decay, just symmetry-style sparsity.
                if rng.gen::<f64>() < 0.5 {
                    m.set_h1(p, q, rng.gen_range(-0.25..0.25));
                }
            }
        }
        for p in 0..n_orbitals {
            for q in p..n_orbitals {
                for r in 0..n_orbitals {
                    for s in r..n_orbitals {
                        if (p, q) > (r, s) {
                            continue;
                        }
                        let distinct = {
                            let mut v = [p, q, r, s];
                            v.sort_unstable();
                            v.windows(2).filter(|w| w[0] != w[1]).count() + 1
                        };
                        // Survival probability and magnitude mirror real MO
                        // integral classes: Coulomb/exchange always survive
                        // and are large; 3-index terms are moderate;
                        // 4-distinct terms mostly vanish by symmetry.
                        let (keep, lo, hi) = match distinct {
                            1 | 2 => (1.0, 0.15, 0.9),
                            3 => (0.35, 0.03, 0.25),
                            _ => (0.12, 0.02, 0.15),
                        };
                        if rng.gen::<f64>() >= keep {
                            continue;
                        }
                        m.set_eri(p, q, r, s, rng.gen_range(lo..hi));
                    }
                }
            }
        }
        m
    }

    /// Expands to the second-quantized Hamiltonian over `2n` spin orbitals
    /// in block ordering: mode(p, ↑) = p, mode(p, ↓) = p + n.
    ///
    /// `H = Σ_{pqσ} h_pq a†_{pσ} a_{qσ}
    ///    + ½ Σ_{pqrs,στ} (pq|rs) a†_{pσ} a†_{rτ} a_{sτ} a_{qσ}`
    pub fn to_fermion_operator(&self) -> FermionOperator {
        let n = self.n;
        let mode = |p: usize, spin: usize| p + spin * n;
        let mut op = FermionOperator::new(2 * n);
        for p in 0..n {
            for q in 0..n {
                let h = self.h1(p, q);
                if h == 0.0 {
                    continue;
                }
                for spin in 0..2 {
                    op.add_one_body(Complex64::real(h), mode(p, spin), mode(q, spin));
                }
            }
        }
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let v = self.eri(p, q, r, s);
                        if v == 0.0 {
                            continue;
                        }
                        for sigma in 0..2 {
                            for tau in 0..2 {
                                let (i, j, k, l) =
                                    (mode(p, sigma), mode(r, tau), mode(s, tau), mode(q, sigma));
                                // a†_i a†_j a_k a_l vanishes when i == j or
                                // k == l (Pauli exclusion).
                                if i == j || k == l {
                                    continue;
                                }
                                op.add_term(
                                    Complex64::real(0.5 * v),
                                    vec![
                                        crate::LadderOp::create(i),
                                        crate::LadderOp::create(j),
                                        crate::LadderOp::annihilate(k),
                                        crate::LadderOp::annihilate(l),
                                    ],
                                );
                            }
                        }
                    }
                }
            }
        }
        op
    }
}

/// A named electronic-structure benchmark case from the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoleculeSpec {
    /// Display name matching the paper (e.g. `"LiH sto3g"`).
    pub name: &'static str,
    /// Number of spin orbitals (fermionic modes).
    pub n_modes: usize,
    /// Seed for the synthetic integrals (ignored for H2, which is exact).
    pub seed: u64,
}

impl MoleculeSpec {
    /// Builds the integrals for this molecule (exact for H2, synthetic
    /// otherwise — see the module documentation).
    pub fn integrals(&self) -> MolecularIntegrals {
        if self.name == "H2 sto3g" {
            MolecularIntegrals::h2_sto3g()
        } else {
            MolecularIntegrals::synthetic(self.n_modes / 2, self.seed)
        }
    }

    /// Builds the second-quantized Hamiltonian.
    pub fn hamiltonian(&self) -> FermionOperator {
        self.integrals().to_fermion_operator()
    }
}

/// The Table I molecule roster with the paper's mode counts.
pub fn molecule_catalog() -> Vec<MoleculeSpec> {
    vec![
        MoleculeSpec {
            name: "H2 sto3g",
            n_modes: 4,
            seed: 2,
        },
        MoleculeSpec {
            name: "LiH sto3g frz",
            n_modes: 6,
            seed: 3,
        },
        MoleculeSpec {
            name: "LiH sto3g",
            n_modes: 12,
            seed: 5,
        },
        MoleculeSpec {
            name: "H2O sto3g",
            n_modes: 14,
            seed: 7,
        },
        MoleculeSpec {
            name: "CH4 sto3g",
            n_modes: 18,
            seed: 11,
        },
        MoleculeSpec {
            name: "O2 sto3g",
            n_modes: 20,
            seed: 13,
        },
        MoleculeSpec {
            name: "NaF sto3g",
            n_modes: 28,
            seed: 17,
        },
        MoleculeSpec {
            name: "CO2 sto3g",
            n_modes: 30,
            seed: 19,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majorana::MajoranaSum;

    #[test]
    fn h2_integrals_have_expected_values() {
        let m = MolecularIntegrals::h2_sto3g();
        assert_eq!(m.h1(0, 0), -1.252477);
        assert_eq!(m.h1(1, 1), -0.475934);
        assert_eq!(m.eri(0, 0, 1, 1), 0.663472);
        // 8-fold symmetry partners.
        assert_eq!(m.eri(1, 1, 0, 0), 0.663472);
        assert_eq!(m.eri(0, 1, 0, 1), m.eri(1, 0, 1, 0));
    }

    #[test]
    fn h2_hamiltonian_is_hermitian_and_parity_conserving() {
        let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
        let m = MajoranaSum::from_fermion(&op);
        assert!(m.is_hermitian(1e-10));
        assert!(m.is_parity_conserving());
        assert_eq!(op.n_modes(), 4);
    }

    #[test]
    fn synthetic_is_deterministic_and_symmetric() {
        let a = MolecularIntegrals::synthetic(4, 42);
        let b = MolecularIntegrals::synthetic(4, 42);
        let c = MolecularIntegrals::synthetic(4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // 8-fold symmetry spot checks.
        assert_eq!(a.eri(0, 1, 2, 3), a.eri(1, 0, 2, 3));
        assert_eq!(a.eri(0, 1, 2, 3), a.eri(2, 3, 0, 1));
        assert_eq!(a.eri(0, 1, 2, 3), a.eri(3, 2, 1, 0));
        assert_eq!(a.h1(1, 2), a.h1(2, 1));
    }

    #[test]
    fn synthetic_hamiltonians_are_hermitian() {
        let op = MolecularIntegrals::synthetic(3, 7).to_fermion_operator();
        let m = MajoranaSum::from_fermion(&op);
        assert!(m.is_hermitian(1e-9));
        assert!(m.is_parity_conserving());
    }

    #[test]
    fn catalog_matches_paper_mode_counts() {
        let cat = molecule_catalog();
        let modes: Vec<usize> = cat.iter().map(|m| m.n_modes).collect();
        assert_eq!(modes, vec![4, 6, 12, 14, 18, 20, 28, 30]);
        for spec in &cat {
            assert_eq!(spec.hamiltonian().n_modes(), spec.n_modes);
        }
    }
}
