//! The Fermi-Hubbard lattice model (the paper's second benchmark family,
//! §V-A.2):
//!
//! ```text
//!     H_fh = Σ_{⟨i,j⟩,σ} t_ij a†_{iσ} a_{jσ} + U Σ_i n_{i↑} n_{i↓}
//! ```
//!
//! on a rectangular `rows × cols` lattice with spinful fermions, so the
//! mode count is `2·rows·cols` (matching Table II's geometries: 2×2 → 8
//! modes, …, 4×5 → 40 modes). Modes are *interleaved* by spin —
//! `mode(site, σ) = 2·site + σ` — matching the Qiskit Nature lattice
//! convention the paper used (this reproduces Table II's Jordan-Wigner
//! weight of 80 on the 2×2 lattice; spin-block ordering would give 56).

use hatt_pauli::Complex64;

use crate::ladder::FermionOperator;

/// A rectangular Fermi-Hubbard lattice specification.
///
/// # Examples
///
/// ```
/// use hatt_fermion::models::FermiHubbard;
///
/// let h = FermiHubbard::new(2, 3).hamiltonian();
/// assert_eq!(h.n_modes(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FermiHubbard {
    rows: usize,
    cols: usize,
    /// Hopping amplitude `t` (applied with a −t convention).
    pub t: f64,
    /// On-site interaction strength `U`.
    pub u: f64,
    /// Whether the lattice wraps around (periodic boundary conditions).
    pub periodic: bool,
}

impl FermiHubbard {
    /// Creates the standard open-boundary lattice with `t = 1`, `U = 4`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "lattice dimensions must be positive");
        FermiHubbard {
            rows,
            cols,
            t: 1.0,
            u: 4.0,
            periodic: false,
        }
    }

    /// Lattice rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Lattice columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of lattice sites.
    pub fn n_sites(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of fermionic modes (`2 ×` sites for spin-½).
    pub fn n_modes(&self) -> usize {
        2 * self.n_sites()
    }

    /// Geometry label in the paper's `rows × cols` form.
    pub fn label(&self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }

    /// Nearest-neighbour edges of the lattice (right and down neighbours,
    /// plus wrap-around when periodic; degenerate wrap edges on 1-wide or
    /// 2-wide dimensions are suppressed).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let site = |r: usize, c: usize| r * self.cols + c;
        let mut edges = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c + 1 < self.cols {
                    edges.push((site(r, c), site(r, c + 1)));
                } else if self.periodic && self.cols > 2 {
                    edges.push((site(r, c), site(r, 0)));
                }
                if r + 1 < self.rows {
                    edges.push((site(r, c), site(r + 1, c)));
                } else if self.periodic && self.rows > 2 {
                    edges.push((site(r, c), site(0, c)));
                }
            }
        }
        edges
    }

    /// Builds the second-quantized Hamiltonian.
    pub fn hamiltonian(&self) -> FermionOperator {
        let n_sites = self.n_sites();
        let mode = |site: usize, spin: usize| 2 * site + spin;
        let mut op = FermionOperator::new(self.n_modes());
        for (i, j) in self.edges() {
            for spin in 0..2 {
                op.add_hopping(Complex64::real(-self.t), mode(i, spin), mode(j, spin));
            }
        }
        for i in 0..n_sites {
            // U n_{i↑} n_{i↓} = U a†_{i↑} a_{i↑} a†_{i↓} a_{i↓}
            op.add_term(
                Complex64::real(self.u),
                vec![
                    crate::LadderOp::create(mode(i, 0)),
                    crate::LadderOp::annihilate(mode(i, 0)),
                    crate::LadderOp::create(mode(i, 1)),
                    crate::LadderOp::annihilate(mode(i, 1)),
                ],
            );
        }
        op
    }
}

/// The Table II geometry roster with the paper's mode counts.
pub fn hubbard_catalog() -> Vec<FermiHubbard> {
    [
        (2, 2),
        (2, 3),
        (2, 4),
        (3, 3),
        (2, 5),
        (3, 4),
        (2, 7),
        (3, 5),
        (4, 4),
        (3, 6),
        (4, 5),
    ]
    .into_iter()
    .map(|(r, c)| FermiHubbard::new(r, c))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majorana::MajoranaSum;

    #[test]
    fn edge_counts_on_open_lattices() {
        assert_eq!(FermiHubbard::new(2, 2).edges().len(), 4);
        assert_eq!(FermiHubbard::new(2, 3).edges().len(), 7);
        assert_eq!(FermiHubbard::new(1, 4).edges().len(), 3);
        assert_eq!(FermiHubbard::new(3, 3).edges().len(), 12);
    }

    #[test]
    fn periodic_adds_wraparound() {
        let mut h = FermiHubbard::new(3, 3);
        h.periodic = true;
        assert_eq!(h.edges().len(), 18);
        // No doubled edges on a 2-wide dimension.
        let mut small = FermiHubbard::new(2, 3);
        small.periodic = true;
        assert_eq!(small.edges().len(), 7 + 2);
    }

    #[test]
    fn mode_counts_match_paper_table2() {
        let modes: Vec<usize> = hubbard_catalog().iter().map(|h| h.n_modes()).collect();
        assert_eq!(modes, vec![8, 12, 16, 18, 20, 24, 28, 30, 32, 36, 40]);
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let op = FermiHubbard::new(2, 2).hamiltonian();
        let m = MajoranaSum::from_fermion(&op);
        assert!(m.is_hermitian(1e-12));
        assert!(m.is_parity_conserving());
    }

    #[test]
    fn term_count_matches_structure() {
        let h = FermiHubbard::new(2, 2);
        let op = h.hamiltonian();
        // 4 edges × 2 spins × 2 (h.c.) hops + 4 interaction terms.
        assert_eq!(op.n_terms(), 4 * 2 * 2 + 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        FermiHubbard::new(0, 3);
    }

    #[test]
    fn label_formats_geometry() {
        assert_eq!(FermiHubbard::new(3, 5).label(), "3x5");
    }
}
