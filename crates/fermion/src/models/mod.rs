//! Benchmark Hamiltonian families from the paper's evaluation (§V-A):
//! electronic structure, Fermi-Hubbard lattices, and collective neutrino
//! oscillations — plus random Hermitian workloads for testing.

mod hubbard;
mod molecule;
mod neutrino;

pub use hubbard::{hubbard_catalog, FermiHubbard};
pub use molecule::{molecule_catalog, MolecularIntegrals, MoleculeSpec};
pub use neutrino::{neutrino_catalog, NeutrinoModel};

use hatt_pauli::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ladder::FermionOperator;

/// Generates a random Hermitian fermionic Hamiltonian with `n_one` one-body
/// hops and `n_two` two-body interactions (deterministic in `seed`). Used
/// by property tests that need arbitrary-but-physical workloads.
pub fn random_hermitian(n_modes: usize, n_one: usize, n_two: usize, seed: u64) -> FermionOperator {
    assert!(n_modes >= 2, "need at least two modes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut op = FermionOperator::new(n_modes);
    for _ in 0..n_one {
        let p = rng.gen_range(0..n_modes);
        let q = rng.gen_range(0..n_modes);
        let c = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        if p == q {
            op.add_number(Complex64::real(c.re), p);
        } else {
            op.add_hopping(c, p, q);
        }
    }
    for _ in 0..n_two {
        let p = rng.gen_range(0..n_modes);
        let mut q = rng.gen_range(0..n_modes);
        while q == p {
            q = rng.gen_range(0..n_modes);
        }
        let r = rng.gen_range(0..n_modes);
        let mut s = rng.gen_range(0..n_modes);
        while s == r {
            s = rng.gen_range(0..n_modes);
        }
        let c = rng.gen_range(-1.0..1.0);
        // c·a†_p a†_q a_r a_s + h.c.
        op.add_two_body(Complex64::real(c), p, q, r, s);
        op.add_two_body(Complex64::real(c), s, r, q, p);
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majorana::MajoranaSum;

    #[test]
    fn random_hermitian_is_hermitian() {
        for seed in 0..5 {
            let op = random_hermitian(5, 6, 4, seed);
            let m = MajoranaSum::from_fermion(&op);
            assert!(m.is_hermitian(1e-10), "seed {seed} not Hermitian");
        }
    }

    #[test]
    fn random_hermitian_is_deterministic() {
        let a = random_hermitian(4, 3, 2, 9);
        let b = random_hermitian(4, 3, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_systems_rejected() {
        random_hermitian(1, 1, 0, 0);
    }
}
