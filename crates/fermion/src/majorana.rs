//! Majorana-operator sums: the *preprocessed* Hamiltonian form consumed by
//! fermion-to-qubit mapping algorithms.
//!
//! Every fermionic Hamiltonian is rewritten over the 2N Majorana operators
//!
//! ```text
//!     a†_j = (M_2j − i·M_2j+1)/2        a_j = (M_2j + i·M_2j+1)/2
//! ```
//!
//! with `M_i M_j = −M_j M_i` for `i ≠ j` and `M_i² = 1`. A
//! [`MajoranaSum`] stores each monomial as a *sorted set* of Majorana
//! indices with an exact complex coefficient (the anticommutation sign of
//! sorting is folded in), merging duplicates — this is the
//! `preprocess(H_F)` step of the paper's Algorithm 1.

use std::collections::BTreeMap;
use std::fmt;

use hatt_pauli::Complex64;

use crate::ladder::{FermionOperator, LadderOp};

/// Magnitude below which Majorana coefficients are dropped.
pub const MAJORANA_EPS: f64 = 1e-12;

/// A weighted sum of canonical Majorana monomials.
///
/// # Examples
///
/// The paper's Equation (3): `H_F = a†0a0 + 2·a†1a†2a1a2` preprocesses to
/// `0.5i·M0M1 − 0.5i·M2M3 − 0.5i·M4M5 + 0.5·M2M3M4M5` (plus a constant).
///
/// ```
/// use hatt_fermion::{FermionOperator, MajoranaSum};
/// use hatt_pauli::Complex64;
///
/// let mut h = FermionOperator::new(3);
/// h.add_one_body(Complex64::ONE, 0, 0);
/// h.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
///
/// let mut m = MajoranaSum::from_fermion(&h);
/// m.take_identity();
/// assert_eq!(m.n_terms(), 4);
/// assert!(m.coefficient_of(&[0, 1]).approx_eq(Complex64::new(0.0, 0.5), 1e-12));
/// assert!(m.coefficient_of(&[2, 3, 4, 5]).approx_eq(Complex64::real(0.5), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MajoranaSum {
    n_modes: usize,
    terms: BTreeMap<Vec<u32>, Complex64>,
}

/// Sorts a Majorana index sequence, returning the anticommutation sign and
/// the canonical (sorted, pair-cancelled) index set.
pub(crate) fn canonicalize(mut seq: Vec<u32>) -> (f64, Vec<u32>) {
    // Insertion sort, counting inversions (each adjacent swap of distinct
    // Majoranas contributes a factor −1).
    let mut swaps = 0usize;
    for i in 1..seq.len() {
        let mut j = i;
        while j > 0 && seq[j - 1] > seq[j] {
            seq.swap(j - 1, j);
            swaps += 1;
            j -= 1;
        }
    }
    // Cancel adjacent equal pairs (M² = 1); they are adjacent after sorting.
    let mut out = Vec::with_capacity(seq.len());
    let mut i = 0;
    while i < seq.len() {
        if i + 1 < seq.len() && seq[i] == seq[i + 1] {
            i += 2;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    let sign = if swaps % 2 == 0 { 1.0 } else { -1.0 };
    (sign, out)
}

impl MajoranaSum {
    /// Creates an empty sum over `n_modes` fermionic modes (Majorana
    /// indices `0..2·n_modes`).
    pub fn new(n_modes: usize) -> Self {
        MajoranaSum {
            n_modes,
            terms: BTreeMap::new(),
        }
    }

    /// Number of fermionic modes `N`.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of Majorana operators, `2N`.
    #[inline]
    pub fn n_majoranas(&self) -> usize {
        2 * self.n_modes
    }

    /// Number of stored monomials (including any identity term).
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when no terms are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff · M_{i1} M_{i2} …` where the indices may appear in any
    /// order and with repetitions; the term is canonicalized (sorted,
    /// squares cancelled, sign folded into the coefficient) and merged.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= 2·n_modes`.
    pub fn add(&mut self, coeff: Complex64, indices: &[u32]) {
        for &i in indices {
            assert!(
                (i as usize) < 2 * self.n_modes,
                "Majorana index {i} out of range 0..{}",
                2 * self.n_modes
            );
        }
        let (sign, key) = canonicalize(indices.to_vec());
        let entry = self.terms.entry(key).or_insert(Complex64::ZERO);
        *entry += coeff * sign;
        if entry.is_zero(MAJORANA_EPS) {
            let (_, key) = canonicalize(indices.to_vec());
            self.terms.remove(&key);
        }
    }

    /// Converts a second-quantized operator by expanding every ladder
    /// operator into its Majorana pair.
    pub fn from_fermion(op: &FermionOperator) -> Self {
        let mut sum = MajoranaSum::new(op.n_modes());
        let mut scratch: Vec<u32> = Vec::new();
        for (coeff, ops) in op.iter() {
            let k = ops.len();
            // Each ladder operator contributes (M_2j ∓ i·M_2j+1)/2; iterate
            // over all 2^k choices of which half to take.
            for mask in 0..(1u64 << k) {
                scratch.clear();
                let mut c = coeff;
                for (idx, &LadderOp { mode, dagger }) in ops.iter().enumerate() {
                    let odd = (mask >> idx) & 1 == 1;
                    if odd {
                        scratch.push((2 * mode + 1) as u32);
                        c = if dagger { -c.mul_i() } else { c.mul_i() };
                    } else {
                        scratch.push((2 * mode) as u32);
                    }
                    c = c * 0.5;
                }
                sum.add(c, &scratch);
            }
        }
        sum
    }

    /// Builds `H_F = Σ_i M_i` over all `2N` Majorana operators — the
    /// workload used by the paper's Figure 12 scalability study.
    pub fn uniform_singles(n_modes: usize) -> Self {
        let mut sum = MajoranaSum::new(n_modes);
        for i in 0..2 * n_modes as u32 {
            sum.add(Complex64::ONE, &[i]);
        }
        sum
    }

    /// Coefficient of a canonical monomial (zero when absent).
    pub fn coefficient_of(&self, indices: &[u32]) -> Complex64 {
        let (sign, key) = canonicalize(indices.to_vec());
        self.terms
            .get(&key)
            .map(|&c| c * sign)
            .unwrap_or(Complex64::ZERO)
    }

    /// Removes and returns the identity (empty-monomial) coefficient.
    pub fn take_identity(&mut self) -> Complex64 {
        self.terms.remove(&Vec::new()).unwrap_or(Complex64::ZERO)
    }

    /// Removes a whole monomial (the indices may appear in any order and
    /// with repetitions), returning its coefficient with the
    /// canonicalization sign folded in — the exact value [`add`] of the
    /// same index sequence would have to receive to recreate the term.
    /// Returns `None` when the canonical monomial is absent.
    ///
    /// [`add`]: MajoranaSum::add
    pub fn remove_term(&mut self, indices: &[u32]) -> Option<Complex64> {
        let (sign, key) = canonicalize(indices.to_vec());
        self.terms.remove(&key).map(|c| c * sign)
    }

    /// Drops terms with `|c| <= eps`.
    pub fn prune(&mut self, eps: f64) {
        self.terms.retain(|_, c| !c.is_zero(eps));
    }

    /// A copy with every coefficient multiplied by `factor` — one step
    /// of a coupling/geometry sweep. With `factor != 0` the term
    /// *structure* is preserved exactly, which is what makes sweeps the
    /// ideal workload for the structure-keyed mapping cache
    /// (`hatt-core`'s `map_many`).
    ///
    /// # Panics
    ///
    /// Panics when `factor == 0` (every term would vanish, silently
    /// changing the structure).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor != 0.0, "scaling by zero destroys the structure");
        MajoranaSum {
            n_modes: self.n_modes,
            terms: self
                .terms
                .iter()
                .map(|(k, &c)| (k.clone(), c * factor))
                .collect(),
        }
    }

    /// Iterator over `(index set, coefficient)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], Complex64)> + '_ {
        self.terms.iter().map(|(k, &c)| (k.as_slice(), c))
    }

    /// Returns `true` when every monomial has an even number of Majorana
    /// factors (fermion-parity conservation).
    pub fn is_parity_conserving(&self) -> bool {
        self.terms.keys().all(|k| k.len() % 2 == 0)
    }

    /// Returns `true` when the operator is Hermitian within `eps`.
    ///
    /// A sorted monomial of `k` Majoranas satisfies
    /// `(M_{i1}…M_{ik})† = (−1)^{k(k−1)/2} M_{i1}…M_{ik}`, so Hermiticity
    /// requires `conj(c)·(−1)^{k(k−1)/2} = c` per term.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        self.terms.iter().all(|(k, c)| {
            let sign = if (k.len() * k.len().saturating_sub(1) / 2) % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            (c.conj() * sign).approx_eq(*c, eps)
        })
    }

    /// Largest monomial size (number of Majorana factors).
    pub fn max_degree(&self) -> usize {
        self.terms.keys().map(|k| k.len()).max().unwrap_or(0)
    }
}

impl fmt::Display for MajoranaSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (k, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({c})·")?;
            if k.is_empty() {
                write!(f, "1")?;
            }
            for idx in k {
                write!(f, "M{idx}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_with_sign() {
        assert_eq!(canonicalize(vec![1, 0]), (-1.0, vec![0, 1]));
        assert_eq!(canonicalize(vec![0, 1]), (1.0, vec![0, 1]));
        assert_eq!(canonicalize(vec![2, 1, 0]), (-1.0, vec![0, 1, 2]));
        assert_eq!(canonicalize(vec![1, 1]), (1.0, vec![]));
        // M1 M0 M1 = -M0 M1 M1 = -M0
        assert_eq!(canonicalize(vec![1, 0, 1]), (-1.0, vec![0]));
    }

    #[test]
    fn number_operator_expansion() {
        // a†0 a0 = 1/2 + (i/2) M0 M1
        let mut h = FermionOperator::new(1);
        h.add_one_body(Complex64::ONE, 0, 0);
        let m = MajoranaSum::from_fermion(&h);
        assert!(m.coefficient_of(&[]).approx_eq(Complex64::real(0.5), 1e-12));
        assert!(m
            .coefficient_of(&[0, 1])
            .approx_eq(Complex64::new(0.0, 0.5), 1e-12));
        assert_eq!(m.n_terms(), 2);
    }

    #[test]
    fn paper_equation_3_preprocessing() {
        // H_F = a†0a0 + 2 a†1a†2a1a2
        //     ↦ 0.5i·M0M1 − 0.5i·M2M3 − 0.5i·M4M5 + 0.5·M2M3M4M5 + const.
        let mut h = FermionOperator::new(3);
        h.add_one_body(Complex64::ONE, 0, 0);
        h.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
        let mut m = MajoranaSum::from_fermion(&h);
        let _ = m.take_identity();
        let i_half = Complex64::new(0.0, 0.5);
        assert!(m.coefficient_of(&[0, 1]).approx_eq(i_half, 1e-12));
        assert!(m.coefficient_of(&[2, 3]).approx_eq(-i_half, 1e-12));
        assert!(m.coefficient_of(&[4, 5]).approx_eq(-i_half, 1e-12));
        assert!(m
            .coefficient_of(&[2, 3, 4, 5])
            .approx_eq(Complex64::real(0.5), 1e-12));
        assert_eq!(m.n_terms(), 4);
        assert!(m.is_hermitian(1e-12));
        assert!(m.is_parity_conserving());
    }

    #[test]
    fn hopping_is_hermitian() {
        let mut h = FermionOperator::new(2);
        h.add_hopping(Complex64::new(0.3, 0.7), 0, 1);
        let m = MajoranaSum::from_fermion(&h);
        assert!(m.is_hermitian(1e-12));
        assert!(m.is_parity_conserving());
    }

    #[test]
    fn anti_hermitian_detected() {
        let mut h = FermionOperator::new(2);
        // a†0 a1 alone is not Hermitian.
        h.add_one_body(Complex64::ONE, 0, 1);
        let m = MajoranaSum::from_fermion(&h);
        assert!(!m.is_hermitian(1e-12));
    }

    #[test]
    fn uniform_singles_has_2n_terms() {
        let m = MajoranaSum::uniform_singles(5);
        assert_eq!(m.n_terms(), 10);
        assert_eq!(m.max_degree(), 1);
        assert!(!m.is_parity_conserving());
    }

    #[test]
    fn add_merges_and_cancels() {
        let mut m = MajoranaSum::new(2);
        m.add(Complex64::ONE, &[0, 1]);
        m.add(Complex64::ONE, &[1, 0]); // = -M0M1, cancels
        assert!(m.is_empty());
        m.add(Complex64::ONE, &[2, 3, 2]); // M2M3M2 = -M3
        assert!(m.coefficient_of(&[3]).approx_eq(-Complex64::ONE, 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        let mut m = MajoranaSum::new(1);
        m.add(Complex64::ONE, &[2]);
    }

    #[test]
    fn anticommutator_identity_check() {
        // {a_p, a†_q} = δ_pq  ⇔  a_p a†_q + a†_q a_p − δ_pq = 0.
        for (p, q) in [(0usize, 0usize), (0, 1)] {
            let mut h = FermionOperator::new(2);
            h.add_term(
                Complex64::ONE,
                vec![LadderOp::annihilate(p), LadderOp::create(q)],
            );
            h.add_term(
                Complex64::ONE,
                vec![LadderOp::create(q), LadderOp::annihilate(p)],
            );
            if p == q {
                h.add_term(-Complex64::ONE, vec![]);
            }
            let m = MajoranaSum::from_fermion(&h);
            assert!(m.is_empty(), "anticommutator failed for p={p}, q={q}: {m}");
        }
    }

    #[test]
    fn scaled_preserves_structure() {
        let mut m = MajoranaSum::new(2);
        m.add(Complex64::ONE, &[0, 1]);
        m.add(Complex64::new(0.0, -0.5), &[2, 3]);
        let s = m.scaled(4.0);
        assert_eq!(s.n_terms(), 2);
        assert!(s
            .coefficient_of(&[0, 1])
            .approx_eq(Complex64::real(4.0), 1e-12));
        assert!(s
            .coefficient_of(&[2, 3])
            .approx_eq(Complex64::new(0.0, -2.0), 1e-12));
        let keys_a: Vec<Vec<u32>> = m.iter().map(|(k, _)| k.to_vec()).collect();
        let keys_b: Vec<Vec<u32>> = s.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    #[should_panic(expected = "destroys the structure")]
    fn scaled_rejects_zero() {
        let _ = MajoranaSum::uniform_singles(1).scaled(0.0);
    }

    #[test]
    fn display_smoke() {
        let mut m = MajoranaSum::new(1);
        assert_eq!(m.to_string(), "0");
        m.add(Complex64::ONE, &[0, 1]);
        assert!(m.to_string().contains("M0M1"));
    }
}
