//! Wire-format property tests: `decode ∘ encode = id` for random
//! `PauliSum`s and `PauliString`s, and the parser/renderer pair of the
//! JSON substrate itself.

use hatt_pauli::json::Json;
use hatt_pauli::wire::{
    decode_pauli_string, decode_pauli_sum, encode_pauli_string, encode_pauli_sum,
};
use hatt_pauli::{Complex64, Pauli, PauliString, PauliSum, Phase};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_string(n: usize, rng: &mut StdRng) -> PauliString {
    let mut s = PauliString::identity(n);
    for q in 0..n {
        let p = match rng.gen_range(0u8..4) {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        s.set_op(q, p);
    }
    s.times_phase(Phase::new(rng.gen_range(0u8..4)))
}

fn random_sum(n: usize, terms: usize, rng: &mut StdRng) -> PauliSum {
    let mut h = PauliSum::new(n);
    for _ in 0..terms {
        let c = Complex64::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0));
        if !c.is_zero(1e-9) {
            h.add(c, random_string(n, rng).normalized());
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pauli_sum_roundtrips_through_rendered_text(
        n in 1usize..9,
        terms in 0usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_sum(n, terms, &mut rng);
        // Through the value tree…
        let back = decode_pauli_sum(&encode_pauli_sum(&h)).expect("decode value");
        prop_assert_eq!(&back, &h);
        // …and through actual bytes (the socket path).
        let text = encode_pauli_sum(&h).render();
        let parsed = Json::parse(&text).expect("rendered JSON parses");
        let back = decode_pauli_sum(&parsed).expect("decode text");
        prop_assert_eq!(back, h);
    }

    #[test]
    fn pauli_string_roundtrips_with_phase(
        n in 0usize..9,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random_string(n, &mut rng);
        let text = encode_pauli_string(&s).render();
        let back = decode_pauli_string(&Json::parse(&text).unwrap()).expect("decode");
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.coefficient_phase(), s.coefficient_phase());
    }

    #[test]
    fn json_render_parse_is_stable(
        seed in 0u64..500,
    ) {
        // Random value trees: parse(render(v)) must be a fixpoint after
        // one round (Int/Num normalization happens in the first round).
        let mut rng = StdRng::seed_from_u64(seed);
        let v = random_json(&mut rng, 0);
        let once = Json::parse(&v.render()).expect("first parse");
        let twice = Json::parse(&once.render()).expect("second parse");
        prop_assert_eq!(once, twice);
    }
}

fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth > 3 {
        rng.gen_range(0u8..5) // leaves only
    } else {
        rng.gen_range(0u8..7)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u8..2) == 0),
        2 => Json::Int(rng.gen_range(-1_000_000i64..1_000_000)),
        3 => Json::Num(rng.gen_range(-1e6..1e6)),
        4 => {
            let len = rng.gen_range(0usize..8);
            let s: String = (0..len)
                .map(|_| char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap_or('?'))
                .collect();
            Json::Str(s + "λ\"\\\n")
        }
        5 => Json::Arr(
            (0..rng.gen_range(0usize..4))
                .map(|_| random_json(rng, depth + 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_range(0usize..4))
                .map(|i| (format!("k{i}"), random_json(rng, depth + 1)))
                .collect(),
        ),
    }
}
