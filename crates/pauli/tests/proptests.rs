//! Property-based tests validating the symplectic Pauli algebra against
//! literal dense-matrix computations on small qubit counts.

use hatt_pauli::{Complex64, Pauli, PauliString, Phase};
use proptest::prelude::*;

type Matrix = Vec<Vec<Complex64>>;

fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.len();
    let mut out = vec![vec![Complex64::ZERO; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            if aik.is_zero(0.0) {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (na, nb) = (a.len(), b.len());
    let n = na * nb;
    let mut out = vec![vec![Complex64::ZERO; n]; n];
    for i in 0..n {
        for j in 0..n {
            out[i][j] = a[i / nb][j / nb] * b[i % nb][j % nb];
        }
    }
    out
}

fn scale(m: &Matrix, c: Complex64) -> Matrix {
    m.iter()
        .map(|row| row.iter().map(|&v| v * c).collect())
        .collect()
}

fn approx_eq(a: &Matrix, b: &Matrix) -> bool {
    a.iter()
        .zip(b)
        .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| x.approx_eq(*y, 1e-10)))
}

fn pauli_matrix(p: Pauli) -> Matrix {
    let m = p.matrix();
    vec![vec![m[0][0], m[0][1]], vec![m[1][0], m[1][1]]]
}

/// Dense matrix of a phase-tracked Pauli string (most significant qubit
/// first in the Kronecker product, matching `Display`).
fn string_matrix(s: &PauliString) -> Matrix {
    let mut m = vec![vec![Complex64::ONE]];
    for q in (0..s.n_qubits()).rev() {
        m = kron(&m, &pauli_matrix(s.op(q)));
    }
    scale(&m, s.coefficient())
}

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    (proptest::collection::vec(arb_pauli(), n), 0u8..4).prop_map(move |(ops, k)| {
        let pairs: Vec<(usize, Pauli)> = ops.into_iter().enumerate().collect();
        PauliString::from_ops(pairs.len(), &pairs).times_phase(Phase::new(k))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn product_matches_dense_matrices(
        (a, b) in (1usize..4).prop_flat_map(|n| (arb_string(n), arb_string(n)))
    ) {
        let prod = a.mul(&b);
        let dense = matmul(&string_matrix(&a), &string_matrix(&b));
        prop_assert!(approx_eq(&string_matrix(&prod), &dense),
            "symbolic {a} * {b} = {prod} disagrees with dense product");
    }

    #[test]
    fn product_is_associative(
        (a, b, c) in (1usize..6).prop_flat_map(|n| (arb_string(n), arb_string(n), arb_string(n)))
    ) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn commutation_matches_dense(
        (a, b) in (1usize..4).prop_flat_map(|n| (arb_string(n), arb_string(n)))
    ) {
        let ab = matmul(&string_matrix(&a), &string_matrix(&b));
        let ba = matmul(&string_matrix(&b), &string_matrix(&a));
        if a.commutes_with(&b) {
            prop_assert!(approx_eq(&ab, &ba));
        } else {
            prop_assert!(approx_eq(&ab, &scale(&ba, -Complex64::ONE)));
        }
    }

    #[test]
    fn adjoint_reverses_products(
        (a, b) in (1usize..5).prop_flat_map(|n| (arb_string(n), arb_string(n)))
    ) {
        prop_assert_eq!(a.mul(&b).adjoint(), b.adjoint().mul(&a.adjoint()));
        prop_assert_eq!(a.adjoint().adjoint(), a.clone());
    }

    #[test]
    fn weight_counts_non_identity_letters(s in (1usize..8).prop_flat_map(arb_string)) {
        let expected = (0..s.n_qubits()).filter(|&q| s.op(q) != Pauli::I).count();
        prop_assert_eq!(s.weight(), expected);
    }

    #[test]
    fn parse_display_roundtrip(s in (1usize..8).prop_flat_map(arb_string)) {
        let plain = s.normalized();
        let reparsed: PauliString = plain.to_string().parse().unwrap();
        prop_assert_eq!(plain, reparsed);
    }

    #[test]
    fn clifford_conjugations_match_dense(
        (s, which) in (2usize..4).prop_flat_map(|n| (arb_string(n), 0u8..4))
    ) {
        // U P U† computed symbolically must equal the dense version.
        let n = s.n_qubits();
        let mut conj = s.clone();
        let u: Matrix = match which {
            0 => { conj.conjugate_h(0); embed_1q(h_matrix(), 0, n) }
            1 => { conj.conjugate_s(0); embed_1q(s_matrix(), 0, n) }
            2 => { conj.conjugate_sdg(0); embed_1q(sdg_matrix(), 0, n) }
            _ => { conj.conjugate_cnot(0, 1); cnot_matrix(0, 1, n) }
        };
        let udag = dagger(&u);
        let lhs = string_matrix(&conj);
        let rhs = matmul(&matmul(&u, &string_matrix(&s)), &udag);
        prop_assert!(approx_eq(&lhs, &rhs), "conjugation {which} mismatch for {s}");
    }

    #[test]
    fn zero_state_action_matches_dense(s in (1usize..4).prop_flat_map(arb_string)) {
        let n = s.n_qubits();
        let (flips, amp) = s.apply_to_zero_state();
        let m = string_matrix(&s);
        // Column 0 of the matrix is P|0…0⟩.
        let mut index = 0usize;
        for q in 0..n {
            if flips.get(q) {
                index |= 1 << q;
            }
        }
        for (row, r) in m.iter().enumerate() {
            let expected = if row == index { amp.to_complex() } else { Complex64::ZERO };
            prop_assert!(r[0].approx_eq(expected, 1e-12));
        }
    }
}

fn dagger(m: &Matrix) -> Matrix {
    let n = m.len();
    let mut out = vec![vec![Complex64::ZERO; n]; n];
    for i in 0..n {
        for j in 0..n {
            out[i][j] = m[j][i].conj();
        }
    }
    out
}

fn h_matrix() -> Matrix {
    let s = 1.0 / 2f64.sqrt();
    vec![
        vec![Complex64::real(s), Complex64::real(s)],
        vec![Complex64::real(s), Complex64::real(-s)],
    ]
}

fn s_matrix() -> Matrix {
    vec![
        vec![Complex64::ONE, Complex64::ZERO],
        vec![Complex64::ZERO, Complex64::I],
    ]
}

fn sdg_matrix() -> Matrix {
    vec![
        vec![Complex64::ONE, Complex64::ZERO],
        vec![Complex64::ZERO, -Complex64::I],
    ]
}

fn embed_1q(u: Matrix, q: usize, n: usize) -> Matrix {
    let dim = 1 << n;
    let mut out = vec![vec![Complex64::ZERO; dim]; dim];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            let (bi, bj) = ((i >> q) & 1, (j >> q) & 1);
            if i & !(1 << q) == j & !(1 << q) {
                *v = u[bi][bj];
            }
        }
    }
    out
}

fn cnot_matrix(c: usize, t: usize, n: usize) -> Matrix {
    let dim = 1 << n;
    let mut out = vec![vec![Complex64::ZERO; dim]; dim];
    for (i, row) in out.iter_mut().enumerate() {
        let j = if (i >> c) & 1 == 1 { i ^ (1 << t) } else { i };
        row[j] = Complex64::ONE;
    }
    out
}
