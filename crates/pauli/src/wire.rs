//! The `hatt-wire/1` versioned JSON wire format — Pauli-layer codecs
//! plus the envelope and decode helpers every other crate's codec
//! builds on (`hatt-fermion::wire`, `hatt-mappings::wire`,
//! `hatt-core::wire`, `hatt-service`).
//!
//! Every document is an envelope
//!
//! ```json
//! {"format": "hatt-wire/1", "kind": "<kind>", "payload": { ... }}
//! ```
//!
//! so readers can reject unknown versions and kinds up front. Decoding
//! is total: malformed input of any shape produces a typed
//! [`WireError`], never a panic — the service layer feeds untrusted
//! bytes straight into these functions.
//!
//! # Examples
//!
//! ```
//! use hatt_pauli::wire::{decode_pauli_sum, encode_pauli_sum};
//! use hatt_pauli::{Complex64, PauliSum};
//!
//! let mut h = PauliSum::new(2);
//! h.add(Complex64::real(0.5), "ZI".parse()?);
//! h.add(Complex64::new(0.0, 1.0), "XX".parse()?);
//!
//! let text = encode_pauli_sum(&h).render();
//! assert!(text.starts_with(r#"{"format":"hatt-wire/1","kind":"pauli_sum""#));
//! let back = decode_pauli_sum(&hatt_pauli::json::Json::parse(&text)?)?;
//! assert_eq!(back, h);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use crate::json::{Json, JsonParseError};
use crate::{Complex64, PauliString, PauliSum};

/// The wire-format version tag every envelope carries.
pub const WIRE_FORMAT: &str = "hatt-wire/1";

/// Largest qubit/mode count a decoder will allocate for. Wire documents
/// claiming more are rejected — a malformed request must not be able to
/// demand terabytes of bit-vector.
pub const MAX_WIRE_MODES: usize = 1 << 20;

/// Typed error for everything that can go wrong decoding `hatt-wire/1`
/// documents.
///
/// # Examples
///
/// ```
/// use hatt_pauli::json::Json;
/// use hatt_pauli::wire::{decode_pauli_sum, WireError};
///
/// let wrong = Json::parse(r#"{"format":"hatt-wire/9","kind":"pauli_sum","payload":{}}"#)?;
/// assert!(matches!(decode_pauli_sum(&wrong), Err(WireError::Format { .. })));
/// # Ok::<(), hatt_pauli::json::JsonParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The document is not valid JSON at all.
    Parse(JsonParseError),
    /// The `format` tag is missing or names an unsupported version.
    Format {
        /// What the document carried (empty when absent).
        found: String,
    },
    /// The `kind` tag does not match what the decoder expected.
    Kind {
        /// The kind the decoder was asked to read.
        expected: &'static str,
        /// The kind the document carried (empty when absent).
        found: String,
    },
    /// A field is missing, has the wrong type, or holds a value outside
    /// the schema (bad Pauli letter, oversized count, …).
    Schema {
        /// Which part of the payload failed.
        context: &'static str,
        /// What exactly was wrong.
        message: String,
    },
    /// An index or string refers to more modes/qubits than the document
    /// declares.
    ModeMismatch {
        /// Where the mismatch was found.
        context: &'static str,
        /// Modes/qubits the document declares.
        declared: usize,
        /// Modes/qubits the offending value requires.
        required: usize,
    },
}

impl WireError {
    /// Builds a [`WireError::Schema`] with formatted detail.
    pub fn schema(context: &'static str, message: impl Into<String>) -> Self {
        WireError::Schema {
            context,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse(e) => write!(f, "wire document is not JSON: {e}"),
            WireError::Format { found } if found.is_empty() => {
                write!(f, "missing wire format tag (expected {WIRE_FORMAT:?})")
            }
            WireError::Format { found } => {
                write!(f, "unsupported wire format {found:?} (expected {WIRE_FORMAT:?})")
            }
            WireError::Kind { expected, found } => {
                write!(f, "wrong wire kind {found:?} (expected {expected:?})")
            }
            WireError::Schema { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
            WireError::ModeMismatch {
                context,
                declared,
                required,
            } => write!(
                f,
                "mode mismatch in {context}: document declares {declared} but the value requires {required}"
            ),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonParseError> for WireError {
    fn from(e: JsonParseError) -> Self {
        WireError::Parse(e)
    }
}

// ---------------------------------------------------------------------
// Envelope + decode helpers shared by every codec in the workspace.
// ---------------------------------------------------------------------

/// Wraps a payload in the versioned envelope.
pub fn envelope(kind: &str, payload: Json) -> Json {
    Json::Obj(vec![
        ("format".into(), Json::str(WIRE_FORMAT)),
        ("kind".into(), Json::str(kind)),
        ("payload".into(), payload),
    ])
}

/// Opens an envelope: checks the format version and kind, returns the
/// payload.
pub fn open_envelope<'a>(v: &'a Json, kind: &'static str) -> Result<&'a Json, WireError> {
    let obj = as_obj(v, "envelope")?;
    let format = get(obj, "format").and_then(|v| as_str_value(v).ok());
    match format {
        Some(f) if f == WIRE_FORMAT => {}
        found => {
            return Err(WireError::Format {
                found: found.unwrap_or_default().to_string(),
            })
        }
    }
    let found_kind = get(obj, "kind")
        .and_then(|v| as_str_value(v).ok())
        .unwrap_or_default();
    if found_kind != kind {
        return Err(WireError::Kind {
            expected: kind,
            found: found_kind.to_string(),
        });
    }
    get(obj, "payload").ok_or(WireError::Schema {
        context: "envelope",
        message: "missing payload".into(),
    })
}

/// Views a value as an object's key/value pairs.
pub fn as_obj<'a>(v: &'a Json, context: &'static str) -> Result<&'a [(String, Json)], WireError> {
    match v {
        Json::Obj(pairs) => Ok(pairs),
        other => Err(WireError::schema(
            context,
            format!("expected an object, got {}", kind_of(other)),
        )),
    }
}

/// Views a value as an array's items.
pub fn as_arr<'a>(v: &'a Json, context: &'static str) -> Result<&'a [Json], WireError> {
    match v {
        Json::Arr(items) => Ok(items),
        other => Err(WireError::schema(
            context,
            format!("expected an array, got {}", kind_of(other)),
        )),
    }
}

/// Looks a key up in an object (first occurrence), if present.
pub fn get<'a>(pairs: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Looks a required key up in an object.
pub fn field<'a>(
    pairs: &'a [(String, Json)],
    key: &'static str,
    context: &'static str,
) -> Result<&'a Json, WireError> {
    get(pairs, key).ok_or(WireError::Schema {
        context,
        message: format!("missing field {key:?}"),
    })
}

/// Views a value as a string.
pub fn as_str<'a>(v: &'a Json, context: &'static str) -> Result<&'a str, WireError> {
    as_str_value(v)
        .map_err(|got| WireError::schema(context, format!("expected a string, got {got}")))
}

fn as_str_value(v: &Json) -> Result<&str, &'static str> {
    match v {
        Json::Str(s) => Ok(s),
        other => Err(kind_of(other)),
    }
}

/// Views a value as a non-negative integer count.
pub fn as_usize(v: &Json, context: &'static str) -> Result<usize, WireError> {
    match v {
        Json::Int(i) if *i >= 0 => {
            usize::try_from(*i).map_err(|_| WireError::schema(context, "count out of range"))
        }
        other => Err(WireError::schema(
            context,
            format!("expected a non-negative integer, got {}", kind_of(other)),
        )),
    }
}

/// Views a value as an unsigned 64-bit counter.
pub fn as_u64(v: &Json, context: &'static str) -> Result<u64, WireError> {
    match v {
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(WireError::schema(
            context,
            format!("expected a non-negative integer, got {}", kind_of(other)),
        )),
    }
}

/// Views a value as a finite float (integers coerce).
pub fn as_f64(v: &Json, context: &'static str) -> Result<f64, WireError> {
    match v {
        Json::Num(x) => Ok(*x),
        Json::Int(i) => Ok(*i as f64),
        other => Err(WireError::schema(
            context,
            format!("expected a number, got {}", kind_of(other)),
        )),
    }
}

/// Views a value as a bool.
pub fn as_bool(v: &Json, context: &'static str) -> Result<bool, WireError> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(WireError::schema(
            context,
            format!("expected a bool, got {}", kind_of(other)),
        )),
    }
}

fn kind_of(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "a bool",
        Json::Num(_) | Json::Int(_) => "a number",
        Json::Str(_) => "a string",
        Json::Arr(_) => "an array",
        Json::Obj(_) => "an object",
    }
}

/// Validates a declared mode/qubit count against [`MAX_WIRE_MODES`].
pub fn checked_modes(n: usize, context: &'static str) -> Result<usize, WireError> {
    if n > MAX_WIRE_MODES {
        return Err(WireError::schema(
            context,
            format!("{n} exceeds the wire limit of {MAX_WIRE_MODES}"),
        ));
    }
    Ok(n)
}

/// Encodes a complex coefficient as the two fields every term object
/// carries.
pub fn coeff_fields(c: Complex64) -> [(String, Json); 2] {
    [
        ("re".into(), Json::Num(c.re)),
        ("im".into(), Json::Num(c.im)),
    ]
}

/// Decodes the `re`/`im` coefficient fields of a term object.
pub fn decode_coeff(
    pairs: &[(String, Json)],
    context: &'static str,
) -> Result<Complex64, WireError> {
    let re = as_f64(field(pairs, "re", context)?, context)?;
    let im = as_f64(field(pairs, "im", context)?, context)?;
    Ok(Complex64::new(re, im))
}

// ---------------------------------------------------------------------
// PauliString / PauliSum codecs.
// ---------------------------------------------------------------------

const KIND_PAULI_STRING: &str = "pauli_string";
const KIND_PAULI_SUM: &str = "pauli_sum";

/// Encodes a [`PauliString`] (letters in the paper's N-length form plus
/// the raw phase exponent, so the operator round-trips exactly).
pub fn encode_pauli_string(s: &PauliString) -> Json {
    envelope(KIND_PAULI_STRING, pauli_string_payload(s))
}

fn pauli_string_payload(s: &PauliString) -> Json {
    Json::Obj(vec![
        ("n_qubits".into(), Json::int(s.n_qubits() as u64)),
        ("letters".into(), Json::str(s.normalized().to_string())),
        (
            "phase".into(),
            Json::int(u64::from(s.coefficient_phase().exponent())),
        ),
    ])
}

/// Decodes a [`PauliString`] envelope.
pub fn decode_pauli_string(v: &Json) -> Result<PauliString, WireError> {
    decode_pauli_string_payload(open_envelope(v, KIND_PAULI_STRING)?)
}

fn decode_pauli_string_payload(payload: &Json) -> Result<PauliString, WireError> {
    const CTX: &str = "pauli_string payload";
    let pairs = as_obj(payload, CTX)?;
    let n = checked_modes(as_usize(field(pairs, "n_qubits", CTX)?, CTX)?, CTX)?;
    let letters = as_str(field(pairs, "letters", CTX)?, CTX)?;
    let phase = as_u64(field(pairs, "phase", CTX)?, CTX)?;
    if phase > 3 {
        return Err(WireError::schema(CTX, "phase exponent must be 0..=3"));
    }
    let s: PauliString = letters
        .parse()
        .map_err(|e| WireError::schema(CTX, format!("{e}")))?;
    if s.n_qubits() != n {
        return Err(WireError::ModeMismatch {
            context: "pauli_string letters",
            declared: n,
            required: s.n_qubits(),
        });
    }
    Ok(s.times_phase(crate::Phase::new(phase as u8)))
}

/// Encodes a [`PauliSum`] with exact coefficients (Rust's shortest
/// round-trip float rendering makes encode∘decode the identity).
pub fn encode_pauli_sum(h: &PauliSum) -> Json {
    let terms = h
        .iter()
        .map(|(c, s)| {
            let mut pairs = coeff_fields(c).to_vec();
            pairs.push(("s".into(), Json::str(s.to_string())));
            Json::Obj(pairs)
        })
        .collect();
    envelope(
        KIND_PAULI_SUM,
        Json::Obj(vec![
            ("n_qubits".into(), Json::int(h.n_qubits() as u64)),
            ("terms".into(), Json::Arr(terms)),
        ]),
    )
}

/// Decodes a [`PauliSum`] envelope.
pub fn decode_pauli_sum(v: &Json) -> Result<PauliSum, WireError> {
    const CTX: &str = "pauli_sum payload";
    let pairs = as_obj(open_envelope(v, KIND_PAULI_SUM)?, CTX)?;
    let n = checked_modes(as_usize(field(pairs, "n_qubits", CTX)?, CTX)?, CTX)?;
    let mut sum = PauliSum::new(n);
    for term in as_arr(field(pairs, "terms", CTX)?, CTX)? {
        const TCTX: &str = "pauli_sum term";
        let tp = as_obj(term, TCTX)?;
        let coeff = decode_coeff(tp, TCTX)?;
        let letters = as_str(field(tp, "s", TCTX)?, TCTX)?;
        let s: PauliString = letters
            .parse()
            .map_err(|e| WireError::schema(TCTX, format!("{e}")))?;
        if s.n_qubits() != n {
            return Err(WireError::ModeMismatch {
                context: "pauli_sum term",
                declared: n,
                required: s.n_qubits(),
            });
        }
        sum.add(coeff, s);
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pauli;

    #[test]
    fn pauli_sum_round_trips() {
        let mut h = PauliSum::new(3);
        h.add(Complex64::real(0.5), "ZIZ".parse().unwrap());
        h.add(Complex64::new(-0.25, 1.5), "XYI".parse().unwrap());
        h.add(Complex64::new(0.0, 1e-3), "IIY".parse().unwrap());
        let text = encode_pauli_sum(&h).render();
        let back = decode_pauli_sum(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn pauli_string_round_trips_with_phase() {
        // iZ: a string whose coefficient is not +1.
        let iz = PauliString::from_ops(2, &[(0, Pauli::X), (0, Pauli::Y)]);
        let text = encode_pauli_string(&iz).render();
        let back = decode_pauli_string(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, iz);
        assert_eq!(back.coefficient_phase(), iz.coefficient_phase());
    }

    #[test]
    fn envelope_rejects_wrong_version_and_kind() {
        let doc = encode_pauli_sum(&PauliSum::new(1));
        assert!(matches!(
            open_envelope(&doc, "majorana_sum"),
            Err(WireError::Kind { .. })
        ));
        let tampered = Json::Obj(vec![
            ("format".into(), Json::str("hatt-wire/2")),
            ("kind".into(), Json::str("pauli_sum")),
            ("payload".into(), Json::Obj(vec![])),
        ]);
        assert!(matches!(
            decode_pauli_sum(&tampered),
            Err(WireError::Format { .. })
        ));
        assert!(matches!(
            decode_pauli_sum(&Json::Null),
            Err(WireError::Schema { .. })
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        for payload in [
            r#"{"n_qubits":2}"#,
            r#"{"n_qubits":-1,"terms":[]}"#,
            r#"{"n_qubits":2,"terms":[{"re":1,"im":0,"s":"XQ"}]}"#,
            r#"{"n_qubits":2,"terms":[{"re":1,"im":0,"s":"XXX"}]}"#,
            r#"{"n_qubits":2,"terms":[{"re":"x","im":0,"s":"XX"}]}"#,
            r#"{"n_qubits":2,"terms":{}}"#,
        ] {
            let doc = Json::parse(&format!(
                r#"{{"format":"hatt-wire/1","kind":"pauli_sum","payload":{payload}}}"#
            ))
            .unwrap();
            assert!(decode_pauli_sum(&doc).is_err(), "{payload}");
        }
    }

    #[test]
    fn oversized_mode_counts_are_rejected() {
        let doc = Json::parse(&format!(
            r#"{{"format":"hatt-wire/1","kind":"pauli_sum","payload":{{"n_qubits":{},"terms":[]}}}}"#,
            MAX_WIRE_MODES + 1
        ))
        .unwrap();
        assert!(matches!(
            decode_pauli_sum(&doc),
            Err(WireError::Schema { .. })
        ));
    }

    #[test]
    fn wire_errors_display_useful_messages() {
        let e = WireError::ModeMismatch {
            context: "pauli_sum term",
            declared: 2,
            required: 3,
        };
        assert!(e.to_string().contains("declares 2"));
        let e = WireError::Format {
            found: String::new(),
        };
        assert!(e.to_string().contains("missing wire format"));
    }
}
