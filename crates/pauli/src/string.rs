//! Pauli strings in symplectic form with exact phase tracking.
//!
//! A [`PauliString`] over `n` qubits is stored as two bit vectors `x`, `z`
//! plus a phase exponent `k`, representing the operator
//!
//! ```text
//!     P = i^k · ∏_q  X_q^{x_q} · Z_q^{z_q}
//! ```
//!
//! A qubit with `x = z = 1` carries the letter `Y` (since `X·Z = -i·Y`,
//! the letter form picks up a factor of `i` per `Y`). The representation
//! makes multiplication, commutation checks and Clifford conjugation O(n/64)
//! bit operations with *lossless* phases — no floating point is involved
//! until a string is combined with a coefficient in a [`crate::PauliSum`].

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::bits::Bits;
use crate::complex::Complex64;
use crate::op::{Pauli, Phase};

/// A phase-tracked Pauli string over a fixed number of qubits.
///
/// Display follows the paper's conventions: the *N-length* form prints
/// letters from qubit `n-1` down to qubit `0` (`XYIZ`), and
/// [`PauliString::compact`] prints the subscripted compact form (`X3Y2Z0`).
///
/// # Examples
///
/// ```
/// use hatt_pauli::{Pauli, PauliString, Phase};
///
/// let a: PauliString = "XYIZ".parse()?;
/// assert_eq!(a.n_qubits(), 4);
/// assert_eq!(a.weight(), 3);
/// assert_eq!(a.op(3), Pauli::X);
/// assert_eq!(a.compact(), "X3Y2Z0");
///
/// let b: PauliString = "YXIZ".parse()?;
/// let prod = a.mul(&b);
/// // X·Y = iZ and Y·X = -iZ on the top two qubits; phases cancel.
/// assert_eq!(prod.coefficient_phase(), Phase::ONE);
/// assert_eq!(prod.to_string(), "ZZII");
/// # Ok::<(), hatt_pauli::ParsePauliStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    n: usize,
    x: Bits,
    z: Bits,
    phase: Phase,
}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            n,
            x: Bits::zeros(n),
            z: Bits::zeros(n),
            phase: Phase::ONE,
        }
    }

    /// A single-qubit operator embedded in `n` qubits, with coefficient `+1`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, op: Pauli) -> Self {
        let mut s = PauliString::identity(n);
        s.set_op(qubit, op);
        s
    }

    /// Builds a string from `(qubit, operator)` pairs with coefficient `+1`.
    ///
    /// Later entries on the same qubit *multiply* onto earlier ones, so
    /// duplicates are legal and follow the Pauli product rules.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn from_ops(n: usize, ops: &[(usize, Pauli)]) -> Self {
        let mut s = PauliString::identity(n);
        for &(q, op) in ops {
            s.mul_op(q, op);
        }
        s
    }

    /// Creates a string from raw symplectic components.
    ///
    /// # Panics
    ///
    /// Panics if the bit vectors disagree in length.
    pub fn from_parts(x: Bits, z: Bits, phase: Phase) -> Self {
        assert_eq!(x.len(), z.len(), "x/z length mismatch");
        PauliString {
            n: x.len(),
            x,
            z,
            phase,
        }
    }

    /// Number of qubits the string is defined on.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The symplectic X component.
    #[inline]
    pub fn x_bits(&self) -> &Bits {
        &self.x
    }

    /// The symplectic Z component.
    #[inline]
    pub fn z_bits(&self) -> &Bits {
        &self.z
    }

    /// The raw phase exponent of the `i^k · X^x Z^z` form.
    #[inline]
    pub fn raw_phase(&self) -> Phase {
        self.phase
    }

    /// The Pauli *letter* on `qubit` (ignoring the global coefficient).
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    #[inline]
    pub fn op(&self, qubit: usize) -> Pauli {
        Pauli::from_xz(self.x.get(qubit), self.z.get(qubit))
    }

    /// Overwrites the letter on `qubit`, keeping the coefficient at its
    /// current value.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn set_op(&mut self, qubit: usize, op: Pauli) {
        let coeff = self.coefficient_phase();
        let (x, z) = op.xz();
        self.x.set(qubit, x);
        self.z.set(qubit, z);
        self.set_coefficient_phase(coeff);
    }

    /// Multiplies `op` onto `qubit` *from the right* (`self <- self · op_q`).
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn mul_op(&mut self, qubit: usize, op: Pauli) {
        let (phase, prod) = self.op(qubit).mul(op);
        let coeff = self.coefficient_phase() * phase;
        let (x, z) = prod.xz();
        self.x.set(qubit, x);
        self.z.set(qubit, z);
        self.set_coefficient_phase(coeff);
    }

    /// Number of `Y` letters, mod 4 (used in phase bookkeeping).
    #[inline]
    fn y_count_mod4(&self) -> u8 {
        (self.x.and_count(&self.z) & 3) as u8
    }

    /// The scalar `c` with `self = c · (⊗ letters)`, as a phase.
    ///
    /// Strings constructed from letters have coefficient `+1`; products
    /// pick up powers of `i`.
    #[inline]
    pub fn coefficient_phase(&self) -> Phase {
        // i^k · X^x Z^z  =  i^k · (-i)^y · ⊗letters  =  i^(k - y) ⊗letters
        Phase::new(self.phase.exponent().wrapping_sub(self.y_count_mod4()) & 3)
    }

    /// The scalar coefficient as a complex number.
    #[inline]
    pub fn coefficient(&self) -> Complex64 {
        self.coefficient_phase().to_complex()
    }

    fn set_coefficient_phase(&mut self, coeff: Phase) {
        self.phase = Phase::new(coeff.exponent() + self.y_count_mod4());
    }

    /// Returns a copy multiplied by an extra scalar phase.
    pub fn times_phase(&self, extra: Phase) -> PauliString {
        let mut s = self.clone();
        s.phase *= extra;
        s
    }

    /// Returns a copy with the coefficient reset to `+1` (the plain
    /// tensor-product of the letters).
    pub fn normalized(&self) -> PauliString {
        let mut s = self.clone();
        s.set_coefficient_phase(Phase::ONE);
        s
    }

    /// Pauli weight: the number of non-identity letters.
    #[inline]
    pub fn weight(&self) -> usize {
        self.x.or_count(&self.z)
    }

    /// Returns `true` when every letter is the identity (the coefficient
    /// may still be any phase).
    #[inline]
    pub fn is_identity(&self) -> bool {
        !self.x.any() && !self.z.any()
    }

    /// Returns `true` when the operator is Hermitian (real coefficient).
    #[inline]
    pub fn is_hermitian(&self) -> bool {
        self.coefficient_phase().is_real()
    }

    /// Symplectic commutation test.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different qubit counts.
    #[inline]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        !(self.x.and_parity(&other.z) ^ self.z.and_parity(&other.x))
    }

    /// Returns `true` when the strings anticommute.
    #[inline]
    pub fn anticommutes_with(&self, other: &PauliString) -> bool {
        !self.commutes_with(other)
    }

    /// Phase-exact product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different qubit counts.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        // (i^k1 X^x1 Z^z1)(i^k2 X^x2 Z^z2)
        //   = i^(k1+k2) (-1)^(z1·x2) X^(x1⊕x2) Z^(z1⊕z2)
        let sign = if self.z.and_parity(&other.x) { 2 } else { 0 };
        let mut x = self.x.clone();
        x.xor_with(&other.x);
        let mut z = self.z.clone();
        z.xor_with(&other.z);
        PauliString {
            n: self.n,
            x,
            z,
            phase: Phase::new(self.phase.exponent() + other.phase.exponent() + sign),
        }
    }

    /// In-place right-multiplication, `self <- self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different qubit counts.
    pub fn mul_assign_right(&mut self, other: &PauliString) {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        let sign = if self.z.and_parity(&other.x) { 2 } else { 0 };
        self.x.xor_with(&other.x);
        self.z.xor_with(&other.z);
        self.phase = Phase::new(self.phase.exponent() + other.phase.exponent() + sign);
    }

    /// Hermitian adjoint (letters are unchanged; the coefficient conjugates).
    pub fn adjoint(&self) -> PauliString {
        // (i^k X^x Z^z)† = (-i)^k Z^z X^x = (-i)^k (-1)^(x·z) X^x Z^z
        let sign = if self.x.and_parity(&self.z) { 2 } else { 0 };
        let mut s = self.clone();
        s.phase = Phase::new(self.phase.inverse().exponent() + sign);
        s
    }

    /// Action on the all-zero state: `P|0…0⟩ = amp · |flips⟩`.
    ///
    /// Returns `(flips, amp)` where `flips` is the bit mask of qubits
    /// excited to `|1⟩` (the X component) and `amp` the exact amplitude.
    pub fn apply_to_zero_state(&self) -> (Bits, Phase) {
        // Z^z |0⟩ = |0⟩, then X^x flips; the amplitude is i^k.
        (self.x.clone(), self.phase)
    }

    /// Iterator over `(qubit, letter)` pairs for non-identity letters.
    pub fn iter_ops(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        (0..self.n)
            .map(|q| (q, self.op(q)))
            .filter(|(_, p)| !p.is_identity())
    }

    /// Support of the string: qubits carrying a non-identity letter.
    pub fn support(&self) -> Vec<usize> {
        self.iter_ops().map(|(q, _)| q).collect()
    }

    /// The compact subscripted form used in the paper, e.g. `X3Y2Z0`.
    /// Identity strings render as `I`.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        let mut ops: Vec<(usize, Pauli)> = self.iter_ops().collect();
        ops.sort_by_key(|&(q, _)| std::cmp::Reverse(q));
        if ops.is_empty() {
            return "I".to_string();
        }
        for (q, p) in ops {
            out.push(p.symbol());
            out.push_str(&q.to_string());
        }
        out
    }

    // ------------------------------------------------------------------
    // Clifford conjugation (used by circuit synthesis): self <- U self U†.
    //
    // The sign rules are the Aaronson–Gottesman tableau updates, expressed
    // on the letter+sign form and then translated back to the raw phase
    // exponent (which also tracks the Y count change).
    // ------------------------------------------------------------------

    fn adjust_phase(&mut self, sign_flip: bool, y_before: u8, y_after: u8) {
        let delta =
            (if sign_flip { 2u8 } else { 0 }).wrapping_add(y_after.wrapping_sub(y_before) & 3);
        self.phase = Phase::new(self.phase.exponent().wrapping_add(delta));
    }

    fn y_at(&self, q: usize) -> u8 {
        u8::from(self.x.get(q) && self.z.get(q))
    }

    /// Conjugates by a Hadamard on `q`: `X↔Z`, `Y → -Y`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn conjugate_h(&mut self, q: usize) {
        let xq = self.x.get(q);
        let zq = self.z.get(q);
        let y0 = self.y_at(q);
        self.x.set(q, zq);
        self.z.set(q, xq);
        let y1 = self.y_at(q);
        self.adjust_phase(xq && zq, y0, y1);
    }

    /// Conjugates by the phase gate S on `q`: `X → Y`, `Y → -X`, `Z → Z`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn conjugate_s(&mut self, q: usize) {
        let xq = self.x.get(q);
        let zq = self.z.get(q);
        let y0 = self.y_at(q);
        self.z.set(q, zq ^ xq);
        let y1 = self.y_at(q);
        self.adjust_phase(xq && zq, y0, y1);
    }

    /// Conjugates by S†: `X → -Y`, `Y → X`, `Z → Z`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn conjugate_sdg(&mut self, q: usize) {
        let xq = self.x.get(q);
        let zq = self.z.get(q);
        let y0 = self.y_at(q);
        self.z.set(q, zq ^ xq);
        let y1 = self.y_at(q);
        self.adjust_phase(xq && !zq, y0, y1);
    }

    /// Conjugates by CNOT with control `c`, target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either index is out of range.
    pub fn conjugate_cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "CNOT control and target must differ");
        let xc = self.x.get(c);
        let zc = self.z.get(c);
        let xt = self.x.get(t);
        let zt = self.z.get(t);
        let y0 = self.y_at(c) + self.y_at(t);
        let flip = xc && zt && (xt == zc);
        self.x.set(t, xt ^ xc);
        self.z.set(c, zc ^ zt);
        let y1 = self.y_at(c) + self.y_at(t);
        self.adjust_phase(flip, y0, y1);
    }
}

impl fmt::Display for PauliString {
    /// N-length string form, most significant qubit first, with a phase
    /// prefix when the coefficient is not `+1` (e.g. `-iXYIZ`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.coefficient_phase() {
            Phase::ONE => {}
            Phase::I => f.write_str("i")?,
            Phase::MINUS_ONE => f.write_str("-")?,
            _ => f.write_str("-i")?,
        }
        for q in (0..self.n).rev() {
            write!(f, "{}", self.op(q))?;
        }
        Ok(())
    }
}

/// Error produced when parsing a Pauli string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliStringError {
    offending: char,
}

impl fmt::Display for ParsePauliStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Pauli letter {:?}; expected I, X, Y or Z",
            self.offending
        )
    }
}

impl Error for ParsePauliStringError {}

impl FromStr for PauliString {
    type Err = ParsePauliStringError;

    /// Parses the N-length form, most significant qubit first (`"XYIZ"` has
    /// `X` on qubit 3). An empty string parses to the 0-qubit identity.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n = s.chars().count();
        let mut out = PauliString::identity(n);
        for (idx, c) in s.chars().enumerate() {
            let p = Pauli::from_symbol(c).ok_or(ParsePauliStringError { offending: c })?;
            out.set_op(n - 1 - idx, p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid Pauli string")
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["XYIZ", "IIII", "ZZZZ", "XIYZ", "Y"] {
            assert_eq!(ps(s).to_string(), s);
        }
        assert!("XQ".parse::<PauliString>().is_err());
    }

    #[test]
    fn parse_letter_positions_follow_paper_convention() {
        let s = ps("XYIZ");
        assert_eq!(s.op(3), Pauli::X);
        assert_eq!(s.op(2), Pauli::Y);
        assert_eq!(s.op(1), Pauli::I);
        assert_eq!(s.op(0), Pauli::Z);
    }

    #[test]
    fn weight_and_compact() {
        let s = ps("XYIZ");
        assert_eq!(s.weight(), 3);
        assert_eq!(s.compact(), "X3Y2Z0");
        assert_eq!(PauliString::identity(4).compact(), "I");
        assert_eq!(s.support(), vec![0, 2, 3]);
    }

    #[test]
    fn single_and_from_ops() {
        let y = PauliString::single(3, 1, Pauli::Y);
        assert_eq!(y.to_string(), "IYI");
        assert_eq!(y.coefficient_phase(), Phase::ONE);
        let s = PauliString::from_ops(2, &[(0, Pauli::X), (0, Pauli::Y)]);
        // X·Y = iZ on qubit 0.
        assert_eq!(s.coefficient_phase(), Phase::I);
        assert_eq!(s.op(0), Pauli::Z);
    }

    #[test]
    fn multiplication_matches_single_qubit_table() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let sa = PauliString::single(1, 0, a);
                let sb = PauliString::single(1, 0, b);
                let prod = sa.mul(&sb);
                let (phase, c) = a.mul(b);
                assert_eq!(prod.op(0), c, "{a}*{b} letter");
                assert_eq!(prod.coefficient_phase(), phase, "{a}*{b} phase");
            }
        }
    }

    #[test]
    fn multiplication_is_phase_exact_on_multi_qubit_strings() {
        let a = ps("XYIZ");
        let b = ps("YXIZ");
        let prod = a.mul(&b);
        // (X·Y)(Y·X)(I·I)(Z·Z) = (iZ)(-iZ)(I)(I) = Z⊗Z⊗I⊗I
        assert_eq!(prod.to_string(), "ZZII");
        // Anticommutation: XY vs YX differ in two anticommuting slots → commute.
        assert!(a.commutes_with(&b));
    }

    #[test]
    fn mul_assign_right_agrees_with_mul() {
        let a = ps("XYZI");
        let b = ps("ZZXY");
        let mut c = a.clone();
        c.mul_assign_right(&b);
        assert_eq!(c, a.mul(&b));
    }

    #[test]
    fn squares_are_identity() {
        for s in ["XYIZ", "YYYY", "XZXZ"] {
            let p = ps(s);
            let sq = p.mul(&p);
            assert!(sq.is_identity());
            assert_eq!(sq.coefficient_phase(), Phase::ONE, "P² = +I for {s}");
        }
    }

    #[test]
    fn commutation_examples() {
        assert!(ps("XI").anticommutes_with(&ps("ZI")));
        assert!(ps("XX").commutes_with(&ps("ZZ")));
        assert!(ps("XYZ").commutes_with(&ps("XYZ")));
        assert!(ps("IX").commutes_with(&ps("ZI")));
    }

    #[test]
    fn adjoint_conjugates_coefficient() {
        let b = PauliString::from_ops(1, &[(0, Pauli::X), (0, Pauli::Y)]); // iZ
        let bd = b.adjoint(); // -iZ
        assert_eq!(bd.coefficient_phase(), Phase::MINUS_I);
        assert_eq!(bd.op(0), Pauli::Z);
        // (AB)† = B†A†
        let p = ps("XYIZ");
        let q = ps("ZZXY");
        assert_eq!(p.mul(&q).adjoint(), q.adjoint().mul(&p.adjoint()));
    }

    #[test]
    fn zero_state_action() {
        // Y|0⟩ = i|1⟩
        let y = PauliString::single(2, 0, Pauli::Y);
        let (flips, amp) = y.apply_to_zero_state();
        assert_eq!(flips.iter_ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(amp, Phase::I);
        // Z|0⟩ = |0⟩
        let z = PauliString::single(2, 1, Pauli::Z);
        let (flips, amp) = z.apply_to_zero_state();
        assert_eq!(flips.count_ones(), 0);
        assert_eq!(amp, Phase::ONE);
    }

    #[test]
    fn hermiticity() {
        assert!(ps("XYZ").is_hermitian());
        let i_z = PauliString::from_ops(1, &[(0, Pauli::X), (0, Pauli::Y)]);
        assert!(!i_z.is_hermitian());
    }

    #[test]
    fn conjugate_h() {
        let mut s = ps("X");
        s.conjugate_h(0);
        assert_eq!(s.to_string(), "Z");
        let mut s = ps("Y");
        s.conjugate_h(0);
        assert_eq!(s.to_string(), "-Y");
        let mut s = ps("Z");
        s.conjugate_h(0);
        assert_eq!(s.to_string(), "X");
    }

    #[test]
    fn conjugate_s_and_sdg() {
        let mut s = ps("X");
        s.conjugate_s(0);
        assert_eq!(s.to_string(), "Y");
        let mut s = ps("Y");
        s.conjugate_s(0);
        assert_eq!(s.to_string(), "-X");
        let mut s = ps("X");
        s.conjugate_sdg(0);
        assert_eq!(s.to_string(), "-Y");
        let mut s = ps("Y");
        s.conjugate_sdg(0);
        assert_eq!(s.to_string(), "X");
        // S† undoes S.
        let mut s = ps("XY");
        s.conjugate_s(1);
        s.conjugate_sdg(1);
        assert_eq!(s, ps("XY"));
    }

    #[test]
    fn conjugate_cnot_spreads_operators() {
        // Qubit 0 = control, qubit 1 = target. String letters print q1 q0.
        let mut s = ps("IX"); // X on control
        s.conjugate_cnot(0, 1);
        assert_eq!(s.to_string(), "XX");
        let mut s = ps("ZI"); // Z on target
        s.conjugate_cnot(0, 1);
        assert_eq!(s.to_string(), "ZZ");
        let mut s = ps("XI"); // X on target: unchanged
        s.conjugate_cnot(0, 1);
        assert_eq!(s.to_string(), "XI");
        let mut s = ps("ZX"); // X_c Z_t → -Y_c Y_t
        s.conjugate_cnot(0, 1);
        assert_eq!(s.to_string(), "-YY");
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn conjugate_cnot_rejects_equal_wires() {
        ps("XX").conjugate_cnot(1, 1);
    }

    #[test]
    fn cnot_conjugation_is_involutive() {
        for s in ["XY", "YZ", "ZZ", "YY", "XI", "IY"] {
            let mut p = ps(s);
            p.conjugate_cnot(0, 1);
            p.conjugate_cnot(0, 1);
            assert_eq!(p, ps(s), "CNOT² = I on {s}");
        }
    }
}
