//! A minimal double-precision complex number type.
//!
//! The workspace deliberately avoids external numeric dependencies; this
//! module provides the small slice of complex arithmetic the rest of the
//! framework needs (coefficients of Pauli sums, state-vector amplitudes,
//! dense Hermitian matrices).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use hatt_pauli::Complex64;
///
/// let z = Complex64::new(1.0, -2.0);
/// assert_eq!(z * Complex64::I, Complex64::new(2.0, 1.0));
/// assert_eq!(z.conj(), Complex64::new(1.0, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by the imaginary unit (cheaper than a full multiply).
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex64::new(-self.im, self.re)
    }

    /// Multiplies by `i^k` for `k mod 4`.
    #[inline]
    pub fn mul_i_pow(self, k: u8) -> Self {
        match k & 3 {
            0 => self,
            1 => self.mul_i(),
            2 => -self,
            _ => -self.mul_i(),
        }
    }

    /// `e^{i theta}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Returns `true` when both parts are within `eps` of `other`.
    #[inline]
    pub fn approx_eq(self, other: Complex64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Returns `true` when the modulus is within `eps` of zero.
    #[inline]
    pub fn is_zero(self, eps: f64) -> bool {
        self.norm_sqr() <= eps * eps
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is exactly zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d != 0.0, "reciprocal of zero complex number");
        Complex64::new(self.re / d, -self.im / d)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::new(3.0, 4.0).re, 3.0);
        assert_eq!(Complex64::real(2.5), Complex64::new(2.5, 0.0));
        assert_eq!(Complex64::from(1.5), Complex64::new(1.5, 0.0));
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::default(), Complex64::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn division_and_recip() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert!((a / b * b).approx_eq(a, 1e-12));
        assert!((a * a.recip()).approx_eq(Complex64::ONE, 1e-12));
        assert!((a / 2.0).approx_eq(Complex64::new(0.5, 1.0), 1e-15));
    }

    #[test]
    fn modulus_and_conj() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn i_powers() {
        let z = Complex64::new(2.0, 1.0);
        assert_eq!(z.mul_i_pow(0), z);
        assert_eq!(z.mul_i_pow(1), z.mul_i());
        assert_eq!(z.mul_i_pow(2), -z);
        assert_eq!(z.mul_i_pow(3), -z.mul_i());
        assert_eq!(z.mul_i_pow(4), z);
        assert_eq!(z.mul_i(), z * Complex64::I);
    }

    #[test]
    fn cis_on_unit_circle() {
        let z = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex64::I, 1e-12));
        assert!((Complex64::cis(1.0).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_mul_and_sum() {
        let z = Complex64::new(1.0, -1.0);
        assert_eq!(2.0 * z, Complex64::new(2.0, -2.0));
        assert_eq!(z * 2.0, Complex64::new(2.0, -2.0));
        let s: Complex64 = [z, z, z].into_iter().sum();
        assert_eq!(s, Complex64::new(3.0, -3.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn zero_tests() {
        assert!(Complex64::new(1e-13, -1e-13).is_zero(1e-12));
        assert!(!Complex64::new(1e-3, 0.0).is_zero(1e-12));
    }
}
