//! # hatt-pauli
//!
//! Pauli-algebra substrate for the HATT fermion-to-qubit mapping framework
//! (a Rust reproduction of *HATT: Hamiltonian Adaptive Ternary Tree for
//! Optimizing Fermion-to-Qubit Mapping*, HPCA 2025).
//!
//! The crate provides exactly the objects the paper's algebra is written
//! in:
//!
//! * [`Pauli`] — single-qubit operators `I, X, Y, Z` and their product
//!   table;
//! * [`Phase`] — the `i^k` phase group, tracked losslessly;
//! * [`PauliString`] — N-qubit strings in symplectic `(x, z)` form with
//!   exact phases, weight, commutation and Clifford conjugation;
//! * [`PauliSum`] — canonicalized weighted sums (qubit Hamiltonians) with
//!   the paper's total-Pauli-weight metric;
//! * [`Bits`] / [`Complex64`] — the supporting bit-vector and complex
//!   scalar types.
//!
//! # Example: the paper's motivating cancellation
//!
//! Multiplying Majorana strings can *cancel* operators: `(X0X1)(Y0Z2)` has
//! weight 3 even though its factors have total weight 4.
//!
//! ```
//! use hatt_pauli::PauliString;
//!
//! let m0: PauliString = "IXX".parse()?; // X1 X0
//! let m5: PauliString = "ZIY".parse()?; // Z2 Y0
//! let prod = m0.mul(&m5);
//! assert_eq!(prod.normalized().to_string(), "ZXZ");
//! assert_eq!(prod.weight(), 3);
//! # Ok::<(), hatt_pauli::ParsePauliStringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
mod complex;
pub mod json;
mod op;
mod string;
mod sum;
pub mod wire;

pub use bits::{Bits, IterOnes};
pub use complex::Complex64;
pub use op::{Pauli, Phase};
pub use string::{ParsePauliStringError, PauliString};
pub use sum::{PauliSum, COEFF_EPS};

// The parallel construction engine (`hatt-core::map_many`, the threaded
// `restarts` portfolio) shares Hamiltonians across `std::thread::scope`
// workers and moves built mappings back to the caller, so every algebra
// type must stay `Send + Sync` (plain owned data — no `Rc`, `RefCell`,
// or raw pointers). Asserted at compile time so a refactor that breaks
// thread-safety fails here, next to the types, rather than deep inside
// the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Bits>();
    assert_send_sync::<Complex64>();
    assert_send_sync::<Pauli>();
    assert_send_sync::<Phase>();
    assert_send_sync::<PauliString>();
    assert_send_sync::<PauliSum>();
};
