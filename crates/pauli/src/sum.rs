//! Weighted sums of Pauli strings — the representation of qubit
//! Hamiltonians `H_Q = Σ c_j S_j` produced by fermion-to-qubit mappings.

use std::collections::BTreeMap;
use std::fmt;

use crate::bits::Bits;
use crate::complex::Complex64;
use crate::op::Phase;
use crate::string::PauliString;

/// Default magnitude below which coefficients are treated as zero.
pub const COEFF_EPS: f64 = 1e-10;

/// A canonicalized weighted sum of Pauli strings on `n` qubits.
///
/// Terms are keyed on the symplectic `(x, z)` pair; each inserted string's
/// internal phase is folded into its coefficient so equal operators always
/// merge. Iteration order is deterministic (lexicographic in the key).
///
/// # Examples
///
/// ```
/// use hatt_pauli::{Complex64, PauliSum, PauliString};
///
/// let mut h = PauliSum::new(2);
/// h.add(Complex64::real(0.5), "ZI".parse()?);
/// h.add(Complex64::real(0.25), "ZI".parse()?);
/// h.add(Complex64::real(1.0), "XX".parse()?);
/// assert_eq!(h.n_terms(), 2);
/// assert_eq!(h.weight(), 3); // ZI contributes 1, XX contributes 2
/// # Ok::<(), hatt_pauli::ParsePauliStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PauliSum {
    n: usize,
    terms: BTreeMap<(Bits, Bits), Complex64>,
}

impl PauliSum {
    /// Creates an empty sum on `n` qubits.
    pub fn new(n: usize) -> Self {
        PauliSum {
            n,
            terms: BTreeMap::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Number of stored terms (including any identity term).
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the sum has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff · string`, folding the string's internal phase into the
    /// coefficient and merging with any equal term. Terms whose coefficient
    /// cancels below [`COEFF_EPS`] are removed.
    ///
    /// # Panics
    ///
    /// Panics if the string's qubit count differs from the sum's.
    pub fn add(&mut self, coeff: Complex64, string: PauliString) {
        assert_eq!(string.n_qubits(), self.n, "qubit count mismatch");
        let c = coeff * string.coefficient();
        let key = (string.x_bits().clone(), string.z_bits().clone());
        let entry = self.terms.entry(key).or_insert(Complex64::ZERO);
        *entry += c;
        if entry.is_zero(COEFF_EPS) {
            let key = (string.x_bits().clone(), string.z_bits().clone());
            self.terms.remove(&key);
        }
    }

    /// Adds every term of `other`, scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn add_scaled(&mut self, factor: Complex64, other: &PauliSum) {
        assert_eq!(other.n, self.n, "qubit count mismatch");
        for (coeff, string) in other.iter() {
            self.add(factor * coeff, string);
        }
    }

    /// Multiplies every coefficient by `factor`.
    pub fn scale(&mut self, factor: Complex64) {
        for c in self.terms.values_mut() {
            *c *= factor;
        }
    }

    /// Looks up the coefficient of an operator (zero when absent). The
    /// string's own phase is accounted for, so `coefficient_of(iZ) = i·c(Z)`
    /// holds consistently.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn coefficient_of(&self, string: &PauliString) -> Complex64 {
        assert_eq!(string.n_qubits(), self.n, "qubit count mismatch");
        let key = (string.x_bits().clone(), string.z_bits().clone());
        let stored = self.terms.get(&key).copied().unwrap_or(Complex64::ZERO);
        // stored is the coefficient of the *plain* letter string; adjust for
        // the query's own phase: query = phase · plain ⇒ c_query = c_plain / phase.
        stored * string.coefficient_phase().inverse().to_complex()
    }

    /// The coefficient of the identity term (zero when absent).
    pub fn identity_coefficient(&self) -> Complex64 {
        let key = (Bits::zeros(self.n), Bits::zeros(self.n));
        self.terms.get(&key).copied().unwrap_or(Complex64::ZERO)
    }

    /// Removes the identity term, returning its coefficient.
    pub fn take_identity(&mut self) -> Complex64 {
        let key = (Bits::zeros(self.n), Bits::zeros(self.n));
        self.terms.remove(&key).unwrap_or(Complex64::ZERO)
    }

    /// Drops terms with `|c| <= eps`.
    pub fn prune(&mut self, eps: f64) {
        self.terms.retain(|_, c| !c.is_zero(eps));
    }

    /// Total Pauli weight: `Σ_j w(S_j)` over all stored (non-pruned) terms —
    /// the paper's primary cost metric for a mapped Hamiltonian.
    pub fn weight(&self) -> usize {
        self.terms.keys().map(|(x, z)| x.or_count(z)).sum()
    }

    /// Largest single-term weight.
    pub fn max_term_weight(&self) -> usize {
        self.terms
            .keys()
            .map(|(x, z)| x.or_count(z))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` when all coefficients are real within `eps` — the
    /// signature of a Hermitian operator in the Pauli basis.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        self.terms.values().all(|c| c.im.abs() <= eps)
    }

    /// Iterator over `(coefficient, plain string)` pairs in deterministic
    /// order. Reconstructed strings always carry coefficient `+1`.
    pub fn iter(&self) -> impl Iterator<Item = (Complex64, PauliString)> + '_ {
        self.terms.iter().map(move |((x, z), &c)| {
            let mut s = PauliString::from_parts(x.clone(), z.clone(), Phase::ONE);
            s = s.normalized();
            (c, s)
        })
    }

    /// Sum of coefficient magnitudes (useful for normalization and noise
    /// estimates).
    pub fn l1_norm(&self) -> f64 {
        self.terms.values().map(|c| c.abs()).sum()
    }
}

impl FromIterator<(Complex64, PauliString)> for PauliSum {
    /// Collects terms; the qubit count is taken from the first string.
    ///
    /// # Panics
    ///
    /// Panics if strings disagree on qubit count.
    fn from_iter<T: IntoIterator<Item = (Complex64, PauliString)>>(iter: T) -> Self {
        let mut it = iter.into_iter().peekable();
        let n = it.peek().map_or(0, |(_, s)| s.n_qubits());
        let mut sum = PauliSum::new(n);
        for (c, s) in it {
            sum.add(c, s);
        }
        sum
    }
}

impl Extend<(Complex64, PauliString)> for PauliSum {
    fn extend<T: IntoIterator<Item = (Complex64, PauliString)>>(&mut self, iter: T) {
        for (c, s) in iter {
            self.add(c, s);
        }
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, s)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({c})·{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid Pauli string")
    }

    #[test]
    fn terms_merge_and_cancel() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.0), ps("XX"));
        h.add(Complex64::real(2.0), ps("XX"));
        assert_eq!(h.n_terms(), 1);
        assert_eq!(h.coefficient_of(&ps("XX")), Complex64::real(3.0));
        h.add(Complex64::real(-3.0), ps("XX"));
        assert!(h.is_empty());
    }

    #[test]
    fn phases_fold_into_coefficients() {
        use crate::op::Pauli;
        let mut h = PauliSum::new(1);
        // iZ inserted with coefficient 1 ⇒ stored as Z with coefficient i.
        let iz = PauliString::from_ops(1, &[(0, Pauli::X), (0, Pauli::Y)]);
        h.add(Complex64::ONE, iz.clone());
        assert!(h.coefficient_of(&ps("Z")).approx_eq(Complex64::I, 1e-12));
        // Querying with the phased string divides the phase back out.
        assert!(h.coefficient_of(&iz).approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn weight_counts_all_terms() {
        let mut h = PauliSum::new(4);
        h.add(Complex64::real(0.5), ps("XYIZ")); // weight 3
        h.add(Complex64::real(0.5), ps("IIZI")); // weight 1
        h.add(Complex64::real(0.5), ps("IIII")); // weight 0
        assert_eq!(h.weight(), 4);
        assert_eq!(h.max_term_weight(), 3);
        assert_eq!(h.n_terms(), 3);
    }

    #[test]
    fn identity_handling() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.5), PauliString::identity(2));
        h.add(Complex64::real(0.5), ps("ZZ"));
        assert_eq!(h.identity_coefficient(), Complex64::real(1.5));
        assert_eq!(h.take_identity(), Complex64::real(1.5));
        assert_eq!(h.identity_coefficient(), Complex64::ZERO);
        assert_eq!(h.n_terms(), 1);
    }

    #[test]
    fn prune_drops_small_terms() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1e-13), ps("X"));
        h.add(Complex64::real(1.0), ps("Z"));
        h.prune(1e-9);
        assert_eq!(h.n_terms(), 1);
    }

    #[test]
    fn hermiticity_detection() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("X"));
        assert!(h.is_hermitian(1e-12));
        h.add(Complex64::I, ps("Z"));
        assert!(!h.is_hermitian(1e-12));
    }

    #[test]
    fn scaled_addition_and_scaling() {
        let mut a = PauliSum::new(1);
        a.add(Complex64::real(1.0), ps("X"));
        let mut b = PauliSum::new(1);
        b.add(Complex64::real(2.0), ps("X"));
        b.add(Complex64::real(1.0), ps("Z"));
        a.add_scaled(Complex64::real(0.5), &b);
        assert!(a
            .coefficient_of(&ps("X"))
            .approx_eq(Complex64::real(2.0), 1e-12));
        assert!(a
            .coefficient_of(&ps("Z"))
            .approx_eq(Complex64::real(0.5), 1e-12));
        a.scale(Complex64::real(2.0));
        assert!(a
            .coefficient_of(&ps("X"))
            .approx_eq(Complex64::real(4.0), 1e-12));
    }

    #[test]
    fn from_iterator_and_extend() {
        let h: PauliSum = vec![
            (Complex64::real(1.0), ps("XY")),
            (Complex64::real(2.0), ps("ZZ")),
        ]
        .into_iter()
        .collect();
        assert_eq!(h.n_qubits(), 2);
        assert_eq!(h.n_terms(), 2);
        let mut h2 = h.clone();
        h2.extend(vec![(Complex64::real(-1.0), ps("XY"))]);
        assert_eq!(h2.n_terms(), 1);
    }

    #[test]
    fn iteration_is_deterministic_and_normalized() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.0), ps("XX"));
        h.add(Complex64::real(1.0), ps("ZZ"));
        let strings: Vec<String> = h.iter().map(|(_, s)| s.to_string()).collect();
        let again: Vec<String> = h.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(strings, again);
        for (_, s) in h.iter() {
            assert_eq!(s.coefficient_phase(), Phase::ONE);
        }
    }

    #[test]
    fn l1_norm() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::new(3.0, 4.0), ps("X"));
        h.add(Complex64::real(-2.0), ps("Z"));
        assert!((h.l1_norm() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn display_smoke() {
        let mut h = PauliSum::new(1);
        assert_eq!(h.to_string(), "0");
        h.add(Complex64::real(1.0), ps("X"));
        assert!(h.to_string().contains("X"));
    }
}
