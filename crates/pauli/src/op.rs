//! Single-qubit Pauli operators and the power-of-`i` phase group.

use std::fmt;
use std::ops::{Mul, MulAssign};

use crate::complex::Complex64;

/// A power of the imaginary unit, `i^k` with `k` mod 4.
///
/// Pauli-string multiplication only ever produces phases from this group,
/// so tracking the exponent exactly (instead of a floating-point complex
/// number) keeps the algebra lossless.
///
/// # Examples
///
/// ```
/// use hatt_pauli::Phase;
///
/// assert_eq!(Phase::I * Phase::I, Phase::MINUS_ONE);
/// assert_eq!(Phase::MINUS_I.to_complex().im, -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Phase(u8);

impl Phase {
    /// `i^0 = 1`.
    pub const ONE: Phase = Phase(0);
    /// `i^1 = i`.
    pub const I: Phase = Phase(1);
    /// `i^2 = -1`.
    pub const MINUS_ONE: Phase = Phase(2);
    /// `i^3 = -i`.
    pub const MINUS_I: Phase = Phase(3);

    /// Creates `i^k` (the exponent is reduced mod 4).
    #[inline]
    pub const fn new(k: u8) -> Self {
        Phase(k & 3)
    }

    /// The exponent `k` in `i^k`, in `0..4`.
    #[inline]
    pub const fn exponent(self) -> u8 {
        self.0
    }

    /// The phase as a complex number.
    #[inline]
    pub fn to_complex(self) -> Complex64 {
        match self.0 {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        }
    }

    /// Multiplicative inverse (`i^-k`).
    #[inline]
    pub const fn inverse(self) -> Phase {
        Phase((4 - self.0) & 3)
    }

    /// Returns `true` for `1` and `-1` (real phases).
    #[inline]
    pub const fn is_real(self) -> bool {
        self.0 & 1 == 0
    }
}

impl Mul for Phase {
    type Output = Phase;
    #[inline]
    fn mul(self, rhs: Phase) -> Phase {
        Phase((self.0 + rhs.0) & 3)
    }
}

impl MulAssign for Phase {
    #[inline]
    fn mul_assign(&mut self, rhs: Phase) {
        self.0 = (self.0 + rhs.0) & 3;
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0 {
            0 => "+1",
            1 => "+i",
            2 => "-1",
            _ => "-i",
        })
    }
}

/// A single-qubit Pauli operator.
///
/// # Examples
///
/// ```
/// use hatt_pauli::{Pauli, Phase};
///
/// let (phase, op) = Pauli::X.mul(Pauli::Y);
/// assert_eq!((phase, op), (Phase::I, Pauli::Z));
/// assert!(Pauli::X.anticommutes(Pauli::Z));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
}

impl Pauli {
    /// All four operators in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Symplectic components `(x, z)` with `Y = (1, 1)`.
    #[inline]
    pub const fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs an operator from symplectic components.
    #[inline]
    pub const fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Single-letter name.
    #[inline]
    pub const fn symbol(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }

    /// Parses a single-letter name (case-insensitive).
    pub fn from_symbol(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// Operator product `self * rhs` as `(phase, operator)`.
    ///
    /// E.g. `X * Y = iZ`, `Y * X = -iZ`, `X * X = I`.
    #[allow(clippy::should_implement_trait)] // returns (Phase, Pauli), not Self
    pub fn mul(self, rhs: Pauli) -> (Phase, Pauli) {
        use Pauli::*;
        match (self, rhs) {
            (I, p) => (Phase::ONE, p),
            (p, I) => (Phase::ONE, p),
            (a, b) if a == b => (Phase::ONE, I),
            (X, Y) => (Phase::I, Z),
            (Y, X) => (Phase::MINUS_I, Z),
            (Y, Z) => (Phase::I, X),
            (Z, Y) => (Phase::MINUS_I, X),
            (Z, X) => (Phase::I, Y),
            (X, Z) => (Phase::MINUS_I, Y),
            // hatt-lint: allow(panic) -- the arms above cover every distinct non-identity pair
            _ => unreachable!(),
        }
    }

    /// Returns `true` when `self` and `rhs` anticommute (both non-identity
    /// and distinct).
    #[inline]
    pub fn anticommutes(self, rhs: Pauli) -> bool {
        self != Pauli::I && rhs != Pauli::I && self != rhs
    }

    /// Returns `true` for the identity.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// The 2x2 matrix in row-major order.
    pub fn matrix(self) -> [[Complex64; 2]; 2] {
        use Complex64 as C;
        match self {
            Pauli::I => [[C::ONE, C::ZERO], [C::ZERO, C::ONE]],
            Pauli::X => [[C::ZERO, C::ONE], [C::ONE, C::ZERO]],
            Pauli::Y => [[C::ZERO, -C::I], [C::I, C::ZERO]],
            Pauli::Z => [[C::ONE, C::ZERO], [C::ZERO, -C::ONE]],
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_group() {
        assert_eq!(Phase::new(5), Phase::I);
        assert_eq!(Phase::I * Phase::MINUS_I, Phase::ONE);
        assert_eq!(Phase::MINUS_ONE * Phase::MINUS_ONE, Phase::ONE);
        assert_eq!(Phase::I.inverse(), Phase::MINUS_I);
        assert!(Phase::ONE.is_real() && Phase::MINUS_ONE.is_real());
        assert!(!Phase::I.is_real());
        let mut p = Phase::I;
        p *= Phase::I;
        assert_eq!(p, Phase::MINUS_ONE);
    }

    #[test]
    fn phase_to_complex() {
        assert_eq!(Phase::ONE.to_complex(), Complex64::ONE);
        assert_eq!(Phase::I.to_complex(), Complex64::I);
        assert_eq!(Phase::MINUS_ONE.to_complex(), -Complex64::ONE);
        assert_eq!(Phase::MINUS_I.to_complex(), -Complex64::I);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::ONE.to_string(), "+1");
        assert_eq!(Phase::MINUS_I.to_string(), "-i");
    }

    #[test]
    fn pauli_products_follow_levi_civita() {
        use Pauli::*;
        assert_eq!(X.mul(Y), (Phase::I, Z));
        assert_eq!(Y.mul(Z), (Phase::I, X));
        assert_eq!(Z.mul(X), (Phase::I, Y));
        assert_eq!(Y.mul(X), (Phase::MINUS_I, Z));
        assert_eq!(Z.mul(Y), (Phase::MINUS_I, X));
        assert_eq!(X.mul(Z), (Phase::MINUS_I, Y));
        for p in Pauli::ALL {
            assert_eq!(p.mul(p), (Phase::ONE, I));
            assert_eq!(I.mul(p), (Phase::ONE, p));
            assert_eq!(p.mul(I), (Phase::ONE, p));
        }
    }

    #[test]
    fn products_match_matrices() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (phase, c) = a.mul(b);
                let ma = a.matrix();
                let mb = b.matrix();
                let mc = c.matrix();
                for r in 0..2 {
                    for s in 0..2 {
                        let mut acc = Complex64::ZERO;
                        for k in 0..2 {
                            acc += ma[r][k] * mb[k][s];
                        }
                        let expect = phase.to_complex() * mc[r][s];
                        assert!(
                            acc.approx_eq(expect, 1e-12),
                            "{a}*{b} disagrees with matrices at ({r},{s})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn xz_roundtrip() {
        for p in Pauli::ALL {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn symbols_roundtrip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_symbol(p.symbol()), Some(p));
            assert_eq!(Pauli::from_symbol(p.symbol().to_ascii_lowercase()), Some(p));
        }
        assert_eq!(Pauli::from_symbol('Q'), None);
    }

    #[test]
    fn anticommutation_table() {
        use Pauli::*;
        assert!(X.anticommutes(Y) && Y.anticommutes(Z) && X.anticommutes(Z));
        assert!(!X.anticommutes(X));
        assert!(!I.anticommutes(X));
        assert!(!X.anticommutes(I));
    }
}
