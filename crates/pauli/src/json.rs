//! A minimal JSON value, writer and parser — the substrate of the
//! `hatt-wire/1` codecs and the perf harness's `BENCH_perf.json`
//! (the container vendors no registry crates, so there is no serde).
//!
//! Strings are escaped per RFC 8259; non-finite floats render as `null`
//! so the output always parses. The parser is a recursion-depth-limited
//! recursive descent over the full value grammar (including `\uXXXX`
//! escapes and surrogate pairs), so untrusted wire input can neither
//! panic nor blow the stack.
//!
//! # Examples
//!
//! ```
//! use hatt_pauli::json::Json;
//!
//! let v = Json::Obj(vec![
//!     ("n".into(), Json::Int(3)),
//!     ("xs".into(), Json::Arr(vec![Json::Num(0.5), Json::Null])),
//! ]);
//! let text = v.render();
//! assert_eq!(text, r#"{"n":3,"xs":[0.5,null]}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Deeper documents are
/// rejected with [`JsonParseError`] instead of risking a stack overflow
/// on adversarial input.
pub const MAX_DEPTH: usize = 128;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number (`NaN`/`±∞` render as `null`).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer constructor from any unsigned count.
    ///
    /// # Panics
    ///
    /// Panics when the value exceeds `i64::MAX` (no such counter exists
    /// in this workspace).
    #[allow(clippy::expect_used)]
    pub fn int(v: u64) -> Json {
        // hatt-lint: allow(panic) -- documented `# Panics` contract; no workspace counter exceeds i64::MAX
        Json::Int(i64::try_from(v).expect("count fits i64"))
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 1);
        out.push('\n');
        out
    }

    /// Parses a JSON document. Exactly one top-level value is accepted;
    /// trailing non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, depth: usize) {
        // depth == 0 means compact mode; otherwise depth counts the
        // current indentation level (starting at 1 for the root).
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if depth > 0 {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, d);
                });
            }
        }
    }
}

/// Error from [`Json::parse`]: the byte offset where parsing stopped and
/// what was expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, what: &str) -> Result<(), JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null", "null").map(|()| Json::Null),
            Some(b't') => self.eat("true", "true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false", "false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // consume opening '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                self.eat("\\u", "a low surrogate escape")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar. The input is a &str, so the
                    // byte stream is valid UTF-8 by construction.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err(format!("invalid number {text:?}"))),
        }
    }
}

fn write_seq(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if depth > 0 {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, if depth > 0 { depth + 1 } else { 0 });
    }
    if depth > 0 && len > 0 {
        out.push('\n');
        out.push_str(&"  ".repeat(depth - 1));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::int(42).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compound_values_render_compact() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name".into(), Json::str("hatt")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"hatt"}"#);
    }

    #[test]
    fn pretty_rendering_is_indented_and_ends_with_newline() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
    }

    #[test]
    fn parse_round_trips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "2.5",
            "\"hi\"",
            "[]",
            "{}",
            r#"[1,[2,[3]],{"a":null}]"#,
            r#"{"s":"\"\\\n\t","n":-0.125}"#,
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let again = Json::parse(&v.render()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::str("é"));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(Json::parse(r#""\ud834\udd1e""#).unwrap(), Json::str("𝄞"));
        assert!(Json::parse(r#""\ud834""#).is_err(), "lone high surrogate");
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"λ=1\"").unwrap(), Json::str("λ=1"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for text in [
            "",
            "nul",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{a:1}",
            "\"unterminated",
            "01x",
            "--3",
            "1 2",
            "[1]]",
            "\"\\q\"",
            "nan",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn parser_bounds_recursion_depth() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // A document right at a reasonable depth still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02214076e23, -0.0625, f64::MIN_POSITIVE] {
            let text = Json::Num(x).render();
            match Json::parse(&text).unwrap() {
                Json::Num(y) => assert_eq!(x, y, "{text}"),
                Json::Int(y) => assert_eq!(x, y as f64, "{text}"),
                other => panic!("{text} parsed to {other:?}"),
            }
        }
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        // Exponent forms parse as floats (they may re-render as ints —
        // decode helpers accept either for f64 fields).
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
        // Out-of-i64-range integers degrade to floats.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }
}
