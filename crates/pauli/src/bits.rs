//! A compact, hashable bit vector used as the symplectic (X/Z) component of
//! Pauli strings and as term-incidence sets inside the HATT construction.
//!
//! The representation is a `Vec<u64>` of blocks; all bits beyond `len` are
//! kept at zero so that `Eq`/`Hash`/`Ord` work structurally.

use std::fmt;
use std::ops::{BitAndAssign, BitOrAssign, BitXorAssign};

/// A fixed-length bit vector backed by 64-bit blocks.
///
/// # Examples
///
/// ```
/// use hatt_pauli::Bits;
///
/// let mut b = Bits::zeros(130);
/// b.set(0, true);
/// b.set(129, true);
/// assert_eq!(b.count_ones(), 2);
/// assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bits {
    len: usize,
    blocks: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bits {
            len,
            blocks: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bit vector from the indices of set bits.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut b = Bits::zeros(len);
        for &i in indices {
            b.set(i, true);
        }
        b
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Flips the bit at `i`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn toggle(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        self.blocks[i / 64] ^= 1u64 << (i % 64);
        self.get(i)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` when at least one bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.blocks.iter().any(|&b| b != 0)
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a ^= b;
        }
    }

    /// In-place OR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place AND with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Overwrites `self` with a copy of `other`, reusing the existing
    /// block allocation (unlike the derived `clone_from`, which
    /// reallocates). Used by scratch buffers in hot loops.
    pub fn copy_from(&mut self, other: &Bits) {
        self.len = other.len;
        self.blocks.clear();
        self.blocks.extend_from_slice(&other.blocks);
    }

    /// In-place three-way XOR: `self ^= b ^ c` in a single word-level
    /// pass. This is the `reduce` kernel of the HATT construction
    /// (`incidence(parent) = A ⊕ B ⊕ C`) without an intermediate
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor3_assign(&mut self, b: &Bits, c: &Bits) {
        assert_eq!(self.len, b.len, "bit vector length mismatch");
        assert_eq!(self.len, c.len, "bit vector length mismatch");
        for ((a, b), c) in self.blocks.iter_mut().zip(&b.blocks).zip(&c.blocks) {
            *a ^= b ^ c;
        }
    }

    /// Popcount of `self & other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn and_count(&self, other: &Bits) -> usize {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Parity (popcount mod 2) of `self & other` — the workhorse of
    /// symplectic-form evaluations.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn and_parity(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.blocks.iter().zip(&other.blocks) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Popcount of `self | other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn or_count(&self, other: &Bits) -> usize {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            block: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Raw block access (read-only), for high-throughput kernels.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Grows the vector to `new_len` bits, padding with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `new_len < len`.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "cannot shrink a Bits via grow");
        self.len = new_len;
        self.blocks.resize(new_len.div_ceil(64), 0);
    }

    /// Fused incidence kernel over a triple: one word-level pass
    /// returning `(none, all)` where `none` counts positions set in
    /// *none* of `a, b, c` and `all` counts positions set in all three.
    ///
    /// This is the hot loop of the HATT weight evaluation
    /// (`weight = len − none − all`); fusing the AND/OR popcounts into a
    /// single traversal keeps all three operand blocks in registers.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn triple_none_all(a: &Bits, b: &Bits, c: &Bits) -> (usize, usize) {
        assert_eq!(a.len, b.len, "bit vector length mismatch");
        assert_eq!(a.len, c.len, "bit vector length mismatch");
        let n_blocks = a.blocks.len();
        let (mut none, mut all) = (0usize, 0usize);
        for i in 0..n_blocks {
            let (x, y, z) = (a.blocks[i], b.blocks[i], c.blocks[i]);
            let mask = if i + 1 == n_blocks {
                last_block_mask(a.len)
            } else {
                u64::MAX
            };
            none += (!(x | y | z) & mask).count_ones() as usize;
            all += (x & y & z).count_ones() as usize;
        }
        (none, all)
    }

    /// Popcount of the three-way intersection `a ∧ b ∧ c` in one fused
    /// word-level pass (no temporaries).
    ///
    /// The HATT tie-break kernel needs only this count — and only when
    /// every pairwise intersection is non-empty — so it is kept separate
    /// from [`Bits::triple_none_all`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and3_count(a: &Bits, b: &Bits, c: &Bits) -> usize {
        assert_eq!(a.len, b.len, "bit vector length mismatch");
        assert_eq!(a.len, c.len, "bit vector length mismatch");
        let mut count = 0usize;
        for i in 0..a.blocks.len() {
            count += (a.blocks[i] & b.blocks[i] & c.blocks[i]).count_ones() as usize;
        }
        count
    }

    /// Popcount of the three-way symmetric difference `a ⊕ b ⊕ c` in one
    /// fused word-level pass — the *residual* of a HATT reduce step: the
    /// number of positions that survive into the parent's incidence.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor3_count(a: &Bits, b: &Bits, c: &Bits) -> usize {
        assert_eq!(a.len, b.len, "bit vector length mismatch");
        assert_eq!(a.len, c.len, "bit vector length mismatch");
        let mut count = 0usize;
        for i in 0..a.blocks.len() {
            count += (a.blocks[i] ^ b.blocks[i] ^ c.blocks[i]).count_ones() as usize;
        }
        count
    }
}

/// Mask selecting the valid bits of the last block of an `n_bits` vector.
#[inline]
fn last_block_mask(n_bits: usize) -> u64 {
    let rem = n_bits % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl BitAndAssign<&Bits> for Bits {
    /// In-place AND (`a &= &b`); equivalent to [`Bits::and_with`].
    fn bitand_assign(&mut self, rhs: &Bits) {
        self.and_with(rhs);
    }
}

impl BitOrAssign<&Bits> for Bits {
    /// In-place OR (`a |= &b`); equivalent to [`Bits::or_with`].
    fn bitor_assign(&mut self, rhs: &Bits) {
        self.or_with(rhs);
    }
}

impl BitXorAssign<&Bits> for Bits {
    /// In-place XOR (`a ^= &b`); equivalent to [`Bits::xor_with`].
    fn bitxor_assign(&mut self, rhs: &Bits) {
        self.xor_with(rhs);
    }
}

/// Iterator over set-bit indices produced by [`Bits::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a Bits,
    block: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block * 64 + tz);
            }
            self.block += 1;
            if self.block >= self.bits.blocks.len() {
                return None;
            }
            self.current = self.bits.blocks[self.block];
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[{}; ", self.len)?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let b = Bits::zeros(70);
        assert_eq!(b.len(), 70);
        assert!(!b.any());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.is_empty());
        assert!(Bits::zeros(0).is_empty());
    }

    #[test]
    fn set_get_toggle() {
        let mut b = Bits::zeros(100);
        b.set(63, true);
        b.set(64, true);
        assert!(b.get(63) && b.get(64));
        assert!(!b.get(62));
        assert!(!b.toggle(63));
        assert!(b.toggle(62));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bits::zeros(10).get(10);
    }

    #[test]
    fn bitwise_ops() {
        let a = Bits::from_indices(130, &[0, 5, 64, 129]);
        let b = Bits::from_indices(130, &[5, 64, 100]);
        let mut x = a.clone();
        x.xor_with(&b);
        assert_eq!(x.iter_ones().collect::<Vec<_>>(), vec![0, 100, 129]);
        let mut o = a.clone();
        o.or_with(&b);
        assert_eq!(o.count_ones(), 5);
        let mut n = a.clone();
        n.and_with(&b);
        assert_eq!(n.iter_ones().collect::<Vec<_>>(), vec![5, 64]);
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 5);
        assert!(!a.and_parity(&b));
        let c = Bits::from_indices(130, &[0]);
        assert!(a.and_parity(&c));
    }

    #[test]
    fn iter_ones_order() {
        let b = Bits::from_indices(200, &[199, 0, 64, 65, 128]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 65, 128, 199]);
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = Bits::from_indices(10, &[1, 3]);
        let b = Bits::from_indices(10, &[1, 3]);
        let c = Bits::from_indices(10, &[1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn grow_pads_with_zeros() {
        let mut b = Bits::from_indices(3, &[2]);
        b.grow(200);
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), 1);
        assert!(b.get(2));
        assert!(!b.get(199));
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = Bits::from_indices(10, &[0]);
        let b = Bits::from_indices(10, &[1]);
        assert!(a < b);
    }

    #[test]
    fn assign_operators_match_methods() {
        let a = Bits::from_indices(130, &[0, 5, 64, 129]);
        let b = Bits::from_indices(130, &[5, 64, 100]);
        let mut x = a.clone();
        x &= &b;
        assert_eq!(x.iter_ones().collect::<Vec<_>>(), vec![5, 64]);
        let mut y = a.clone();
        y |= &b;
        assert_eq!(y.count_ones(), 5);
        let mut z = a.clone();
        z ^= &b;
        assert_eq!(z.iter_ones().collect::<Vec<_>>(), vec![0, 100, 129]);
    }

    #[test]
    fn copy_from_reuses_allocation_and_matches_clone() {
        let src = Bits::from_indices(130, &[0, 64, 129]);
        let mut dst = Bits::from_indices(200, &[5, 199]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let mut small = Bits::zeros(3);
        small.copy_from(&src);
        assert_eq!(small, src);
    }

    #[test]
    fn xor3_assign_is_three_way_xor() {
        let a = Bits::from_indices(200, &[0, 64, 128, 199]);
        let b = Bits::from_indices(200, &[0, 64, 100]);
        let c = Bits::from_indices(200, &[64, 100, 199]);
        let mut fused = a.clone();
        fused.xor3_assign(&b, &c);
        let mut twostep = a.clone();
        twostep.xor_with(&b);
        twostep.xor_with(&c);
        assert_eq!(fused, twostep);
        assert_eq!(fused.iter_ones().collect::<Vec<_>>(), vec![64, 128]);
    }

    #[test]
    fn triple_none_all_counts() {
        // 130 bits exercises the partial last block.
        let a = Bits::from_indices(130, &[0, 1, 2, 129]);
        let b = Bits::from_indices(130, &[1, 2, 64]);
        let c = Bits::from_indices(130, &[2, 64, 129]);
        let (none, all) = Bits::triple_none_all(&a, &b, &c);
        // Positions touched by at least one: {0, 1, 2, 64, 129} → 125 none.
        assert_eq!(none, 125);
        // Only position 2 is in all three.
        assert_eq!(all, 1);
        // Exhaustive cross-check against per-bit evaluation.
        let (mut none_ref, mut all_ref) = (0, 0);
        for i in 0..130 {
            let k = usize::from(a.get(i)) + usize::from(b.get(i)) + usize::from(c.get(i));
            if k == 0 {
                none_ref += 1;
            }
            if k == 3 {
                all_ref += 1;
            }
        }
        assert_eq!((none, all), (none_ref, all_ref));
    }

    #[test]
    fn triple_none_all_on_empty_vectors() {
        let z = Bits::zeros(0);
        assert_eq!(Bits::triple_none_all(&z, &z, &z), (0, 0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn triple_none_all_length_mismatch_panics() {
        let a = Bits::zeros(10);
        let b = Bits::zeros(11);
        Bits::triple_none_all(&a, &a, &b);
    }

    #[test]
    fn and3_and_xor3_counts() {
        let a = Bits::from_indices(130, &[0, 1, 2, 129]);
        let b = Bits::from_indices(130, &[1, 2, 64]);
        let c = Bits::from_indices(130, &[2, 64, 129]);
        // Only position 2 is in all three.
        assert_eq!(Bits::and3_count(&a, &b, &c), 1);
        // Odd membership: 0 (a only), 1 (a, b), 2 (all), 64 (b, c),
        // 129 (a, c) → positions {0, 2} → 2.
        assert_eq!(Bits::xor3_count(&a, &b, &c), 2);
        // Cross-check against per-bit evaluation.
        let (mut and3_ref, mut xor3_ref) = (0, 0);
        for i in 0..130 {
            let k = usize::from(a.get(i)) + usize::from(b.get(i)) + usize::from(c.get(i));
            if k == 3 {
                and3_ref += 1;
            }
            if k % 2 == 1 {
                xor3_ref += 1;
            }
        }
        assert_eq!(Bits::and3_count(&a, &b, &c), and3_ref);
        assert_eq!(Bits::xor3_count(&a, &b, &c), xor3_ref);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and3_count_length_mismatch_panics() {
        let a = Bits::zeros(10);
        let b = Bits::zeros(11);
        Bits::and3_count(&a, &a, &b);
    }
}
