//! Compile a Fermi-Hubbard lattice simulation end-to-end, then route it
//! onto a heavy-hex device — the paper's condensed-matter workload
//! (Table II) through the architecture-aware pipeline (Table IV).
//!
//! ```sh
//! cargo run --release --example hubbard_routing
//! ```

// Example code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::circuit::{
    optimize, route_sabre, trotter_circuit, CouplingMap, RouterOptions, TermOrder,
};
use hatt::core::Mapper;
use hatt::fermion::models::FermiHubbard;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{balanced_ternary_tree, bravyi_kitaev, jordan_wigner, FermionMapping};

fn main() {
    let lattice = FermiHubbard::new(2, 3);
    println!(
        "Fermi-Hubbard {} lattice: {} sites, {} modes, t = {}, U = {}",
        lattice.label(),
        lattice.n_sites(),
        lattice.n_modes(),
        lattice.t,
        lattice.u
    );
    let mut h = MajoranaSum::from_fermion(&lattice.hamiltonian());
    let _ = h.take_identity();
    let n = h.n_modes();

    let mappings: Vec<Box<dyn FermionMapping>> = vec![
        Box::new(jordan_wigner(n)),
        Box::new(bravyi_kitaev(n)),
        Box::new(balanced_ternary_tree(n)),
        Box::new(Mapper::new().map(&h).expect("non-empty Hamiltonian")),
    ];

    let device = CouplingMap::montreal27();
    println!(
        "\nrouting onto {} ({} qubits, {} couplers)\n",
        device.name(),
        device.n_qubits(),
        device.edges().len()
    );
    println!(
        "{:<8} {:>8} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>7}",
        "mapping", "weight", "cx(flat)", "depth", "1q", "cx(routed)", "depth", "swaps"
    );
    for mapping in &mappings {
        let hq = mapping.map_majorana_sum(&h);
        let flat = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
        let fm = flat.metrics();
        let routed = route_sabre(&flat, &device, &RouterOptions::default());
        let rm = optimize(&routed.circuit).metrics();
        println!(
            "{:<8} {:>8} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>7}",
            mapping.name(),
            hq.weight(),
            fm.cnot,
            fm.depth,
            fm.single_qubit,
            rm.cnot,
            rm.depth,
            routed.swaps_inserted
        );
    }
    println!("\nlower Pauli weight propagates into fewer CNOTs before *and* after routing");
}
