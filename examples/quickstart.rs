//! Quickstart: compile a Hamiltonian-adaptive fermion-to-qubit mapping
//! for the H2 molecule and compare it against Jordan-Wigner.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Example code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::circuit::{optimize, trotter_circuit, TermOrder};
use hatt::core::Mapper;
use hatt::fermion::models::MolecularIntegrals;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{jordan_wigner, validate, FermionMapping};

fn main() {
    // 1. Build the fermionic Hamiltonian (published H2/STO-3G integrals).
    let molecule = MolecularIntegrals::h2_sto3g();
    let hf = molecule.to_fermion_operator();
    println!(
        "H2/STO-3G: {} fermionic terms on {} modes",
        hf.n_terms(),
        hf.n_modes()
    );

    // 2. Preprocess to Majorana form (the input of every mapping).
    let mut h = MajoranaSum::from_fermion(&hf);
    let constant = h.take_identity();
    println!(
        "Majorana form: {} terms (constant {:.6})",
        h.n_terms(),
        constant.re
    );

    // 3. Compile the Hamiltonian-adaptive mapping through a reusable
    //    handle (`Mapper` validates inputs and returns typed errors).
    let mapper = Mapper::new();
    let mapping = mapper.map(&h).expect("H2 has modes to map");
    println!("\nHATT Majorana strings:");
    for k in 0..2 * h.n_modes() {
        println!(
            "  M{k:<2} = {}  (compact: {})",
            mapping.majorana(k),
            mapping.majorana(k).compact()
        );
    }
    let report = validate(&mapping);
    println!(
        "valid mapping: {}, vacuum preserving: {}",
        report.is_valid(),
        report.vacuum_preserving
    );

    // 4. Map the Hamiltonian and compare Pauli weight with Jordan-Wigner.
    let hq_hatt = mapping.map_majorana_sum(&h);
    let hq_jw = jordan_wigner(h.n_modes()).map_majorana_sum(&h);
    println!(
        "\nPauli weight: HATT {} vs JW {}",
        hq_hatt.weight(),
        hq_jw.weight()
    );

    // 5. Synthesize and optimize one Trotter step.
    for (name, hq) in [("HATT", &hq_hatt), ("JW", &hq_jw)] {
        let circuit = optimize(&trotter_circuit(hq, 1.0, 1, TermOrder::Lexicographic));
        let m = circuit.metrics();
        println!(
            "{name}: {} CNOTs, {} single-qubit gates, depth {}",
            m.cnot, m.single_qubit, m.depth
        );
    }
}
