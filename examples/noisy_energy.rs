//! Measure the H2 ground-state energy on a simulated noisy device
//! (IonQ-Forte-1-like calibration) under different fermion-to-qubit
//! mappings — the paper's Figure 11 experiment as a library workflow.
//!
//! ```sh
//! cargo run --release --example noisy_energy
//! ```

// Example code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::circuit::{optimize, trotter_circuit, TermOrder};
use hatt::core::Mapper;
use hatt::fermion::models::MolecularIntegrals;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{jordan_wigner, FermionMapping};
use hatt::sim::{bias_variance, energy_samples, ground_state, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let h = MajoranaSum::from_fermion(&MolecularIntegrals::h2_sto3g().to_fermion_operator());
    let n = h.n_modes();
    let noise = NoiseModel::ionq_forte1();
    let mut rng = StdRng::seed_from_u64(2026);

    println!("H2/STO-3G energy measurement, IonQ-Forte-1-like noise");
    println!(
        "p1 = {:.1e}, p2 = {:.1e}, readout = {:.1e}\n",
        noise.p1, noise.p2, noise.readout
    );

    for mapping in [
        Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
        Box::new(Mapper::new().map(&h).expect("non-empty Hamiltonian")),
    ] {
        let hq = mapping.map_majorana_sum(&h);
        // The exact ground state is the preparation (stand-in for VQE).
        let (e0, psi0) = ground_state(&hq);
        // One Trotter step of e^{-iHt}: ideally energy-preserving, so all
        // bias comes from noise acting on the mapping-dependent circuit.
        let circuit = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
        let samples = energy_samples(&psi0, &circuit, &hq, &noise, 1000, &mut rng);
        let (bias, variance) = bias_variance(&samples, e0);
        println!(
            "{:<6} ({} CNOTs): E = {:+.4} ± {:.4}  (exact {:+.4}, bias {:+.4})",
            mapping.name(),
            circuit.metrics().cnot,
            e0 + bias,
            variance.sqrt(),
            e0,
            bias
        );
    }
    println!("\nfewer gates → less depolarizing damage → smaller bias");
}
