//! Scale the Hamiltonian-adaptive construction across collective
//! neutrino oscillation models (the paper's astroparticle workload,
//! Table III) and inspect the construction instrumentation.
//!
//! ```sh
//! cargo run --release --example neutrino_scaling
//! ```

use hatt::core::{hatt_with, HattOptions, Variant};
use hatt::fermion::models::NeutrinoModel;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{jordan_wigner, FermionMapping};

fn main() {
    println!(
        "{:<8} {:>6} {:>8} | {:>10} {:>10} {:>9} | {:>12} {:>12}",
        "case", "modes", "terms", "JW weight", "HATT", "saving", "candidates", "time(ms)"
    );
    for (sites, flavors) in [(2, 2), (3, 2), (4, 2), (3, 3), (5, 2), (4, 3)] {
        let model = NeutrinoModel::new(sites, flavors);
        let mut h = MajoranaSum::from_fermion(&model.hamiltonian());
        let _ = h.take_identity();
        let n = h.n_modes();

        let mapping = hatt_with(
            &h,
            &HattOptions {
                variant: Variant::Cached,
                naive_weight: false,
            },
        );
        let stats = mapping.stats();
        let w_hatt = mapping.map_majorana_sum(&h).weight();
        let w_jw = jordan_wigner(n).map_majorana_sum(&h).weight();
        println!(
            "{:<8} {:>6} {:>8} | {:>10} {:>10} {:>8.1}% | {:>12} {:>12.2}",
            model.label(),
            n,
            h.n_terms(),
            w_jw,
            w_hatt,
            100.0 * (w_jw as f64 - w_hatt as f64) / w_jw as f64,
            stats.total_candidates(),
            stats.elapsed.as_secs_f64() * 1e3,
        );
    }

    // Per-iteration drill-down for one case: how the greedy settles weight
    // qubit by qubit.
    let model = NeutrinoModel::new(3, 2);
    let mut h = MajoranaSum::from_fermion(&model.hamiltonian());
    let _ = h.take_identity();
    let mapping = hatt_with(&h, &HattOptions::default());
    println!(
        "\nper-qubit settled weight for {} (first 8 iterations):",
        model.label()
    );
    for it in mapping.stats().iterations.iter().take(8) {
        println!(
            "  qubit {:>2}: weight {:>5}  ({} candidate selections)",
            it.qubit, it.settled_weight, it.candidates
        );
    }
}
