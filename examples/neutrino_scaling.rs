//! Scale the Hamiltonian-adaptive construction across collective
//! neutrino oscillation models (the paper's astroparticle workload,
//! Table III) and inspect the construction instrumentation.
//!
//! Savings are *signed*: a negative value means HATT lost to
//! Jordan-Wigner on that case and is flagged explicitly — the greedy
//! default should not lose anywhere ≥ 24 modes, and the `restarts`
//! quality policy should never lose at all.
//!
//! ```sh
//! cargo run --release --example neutrino_scaling
//! ```

// Example code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::core::Mapper;
use hatt::fermion::models::NeutrinoModel;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{jordan_wigner, FermionMapping, SelectionPolicy};

/// Renders a signed saving vs JW, flagging regressions loudly.
fn saving(w_jw: usize, w_hatt: usize) -> String {
    let pct = 100.0 * (w_jw as f64 - w_hatt as f64) / w_jw as f64;
    if w_hatt > w_jw {
        format!("{pct:+.1}% (HATT worse)")
    } else {
        format!("{pct:+.1}%")
    }
}

fn main() {
    println!(
        "{:<8} {:>6} {:>8} | {:>10} {:>10} {:>20} | {:>10} {:>20} | {:>10}",
        "case", "modes", "terms", "JW", "greedy", "saving", "restarts", "saving", "time(ms)"
    );
    for (sites, flavors) in [(2, 2), (3, 2), (4, 2), (3, 3), (5, 2), (4, 3)] {
        let model = NeutrinoModel::new(sites, flavors);
        let mut h = MajoranaSum::from_fermion(&model.hamiltonian());
        let _ = h.take_identity();
        let n = h.n_modes();
        let w_jw = jordan_wigner(n).map_majorana_sum(&h).weight();

        let greedy = Mapper::new().map(&h).expect("neutrino model maps");
        let w_greedy = greedy.map_majorana_sum(&h).weight();
        let quality = Mapper::builder()
            .policy(SelectionPolicy::quality())
            .build()
            .expect("static mapper configuration")
            .map(&h)
            .expect("neutrino model maps");
        let w_quality = quality.map_majorana_sum(&h).weight();
        println!(
            "{:<8} {:>6} {:>8} | {:>10} {:>10} {:>20} | {:>10} {:>20} | {:>10.2}",
            model.label(),
            n,
            h.n_terms(),
            w_jw,
            w_greedy,
            saving(w_jw, w_greedy),
            w_quality,
            saving(w_jw, w_quality),
            quality.stats().elapsed.as_secs_f64() * 1e3,
        );
    }

    // Per-iteration drill-down for one case: how the greedy settles weight
    // qubit by qubit.
    let model = NeutrinoModel::new(3, 2);
    let mut h = MajoranaSum::from_fermion(&model.hamiltonian());
    let _ = h.take_identity();
    let mapping = Mapper::new().map(&h).expect("neutrino model maps");
    println!(
        "\nper-qubit settled weight for {} (first 8 iterations):",
        model.label()
    );
    for it in mapping.stats().iterations.iter().take(8) {
        println!(
            "  qubit {:>2}: weight {:>5}  ({} candidate selections)",
            it.qubit, it.settled_weight, it.candidates
        );
    }
}
