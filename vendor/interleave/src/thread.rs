//! Instrumented stand-ins for [`std::thread`] spawn/scope/join.
//!
//! Inside a [`model`](crate::model), spawned closures become model
//! threads the explorer schedules; `join` first waits *logically* (a
//! scheduling point that can block, letting other threads run) and
//! only then performs the real OS join, which by that point returns
//! promptly. Outside a model everything is a thin passthrough to
//! `std::thread`.
//!
//! One contract for model code: **join every scoped handle before the
//! scope closure returns.** The implicit join at the end of
//! [`std::thread::scope`] is not instrumented, so leaking an unjoined
//! scoped model thread would park the scope exit on a thread the
//! scheduler still owns. (`vendor/parallel` joins all its workers
//! explicitly, so the fan-out port satisfies this by construction.)

use std::sync::Arc;

use crate::scheduler::{self, run_model_thread, ModelCtx};

/// Spawns a thread. Inside a model the closure runs as a model thread
/// under the explorer's schedule; outside it is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match scheduler::current() {
        Some(t) => {
            let model = Arc::clone(&t.model);
            let tid = model.register_thread();
            let inner = {
                let model = Arc::clone(&model);
                std::thread::spawn(move || run_model_thread(model, tid, f))
            };
            // Scheduling point: the child is runnable from here on.
            t.model.yield_op(t.tid);
            JoinHandle {
                inner,
                model: Some((model, tid)),
            }
        }
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
    }
}

/// Handle returned by [`spawn`]; mirrors [`std::thread::JoinHandle`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<ModelCtx>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (or the
    /// panic payload it unwound with). A scheduling point in a model.
    pub fn join(self) -> std::thread::Result<T> {
        logical_join(self.model.as_ref());
        self.inner.join()
    }
}

fn logical_join(target: Option<&(Arc<ModelCtx>, usize)>) {
    if let (Some((_, tid)), Some(me)) = (target, scheduler::current()) {
        me.model.join(me.tid, *tid);
    }
}

/// Scoped-thread entry point mirroring [`std::thread::scope`]. The
/// closure receives a [`Scope`] *by value*, which reads the same at
/// call sites as std's `&Scope`.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
{
    let ctx = scheduler::current();
    std::thread::scope(|s| f(Scope { inner: s, ctx }))
}

/// Instrumented view of [`std::thread::Scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    /// Owned (not borrowed): a borrow could not satisfy the
    /// higher-ranked `for<'scope>` bound of [`std::thread::scope`].
    ctx: Option<scheduler::ThreadCtx>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; see [`spawn`] for the model semantics.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            Some(t) => {
                let model = Arc::clone(&t.model);
                let tid = model.register_thread();
                let inner = {
                    let model = Arc::clone(&model);
                    self.inner.spawn(move || run_model_thread(model, tid, f))
                };
                t.model.yield_op(t.tid);
                ScopedJoinHandle {
                    inner,
                    model: Some((model, tid)),
                }
            }
            None => ScopedJoinHandle {
                inner: self.inner.spawn(f),
                model: None,
            },
        }
    }
}

/// Handle returned by [`Scope::spawn`]; mirrors
/// [`std::thread::ScopedJoinHandle`].
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<ModelCtx>, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the scoped thread to finish; see [`JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        logical_join(self.model.as_ref());
        self.inner.join()
    }
}
