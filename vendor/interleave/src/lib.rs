//! Deterministic-interleaving model checker — a hand-rolled, std-only
//! stand-in for the subset of [`loom`](https://docs.rs/loom) the HATT
//! workspace needs (the container has no crates-io access, so like
//! `vendor/{rand,proptest,criterion,parallel}` this crate covers
//! exactly what the repo uses).
//!
//! ## What it does
//!
//! [`model`] runs a closure over **every** schedule of the threads it
//! spawns, where a "schedule" is the order in which threads pass the
//! instrumented synchronization points ([`sync::Mutex`],
//! [`sync::Condvar`], [`sync::atomic`], [`thread::spawn`] /
//! [`thread::scope`], joins). Execution is fully serialized: exactly
//! one model thread runs at a time, and at every sync operation the
//! scheduler picks which runnable thread goes next. A depth-first
//! search over those pick points enumerates all interleavings, so an
//! assertion that holds for a [`model`] run holds for *every* ordering
//! the real primitives could produce at mutex/condvar granularity —
//! which is exactly the granularity the `MappingCache` slot protocol
//! and the `vendor/parallel` work queue synchronize at.
//!
//! Deadlocks are detected (no runnable thread while some thread still
//! waits) and reported with the schedule that produced them; so are
//! panics on any model thread, with the schedule attached for replay.
//!
//! ## Passthrough outside a model
//!
//! The shims delegate to the real `std::sync` / `std::thread`
//! primitives whenever no model is active on the calling thread. That
//! lets production types (the cache, the work queue) be compiled
//! against these shims under `--cfg interleave` and still behave
//! normally in ordinary tests — only code that runs *inside* a
//! [`model`] closure is explored.
//!
//! ## Bounds
//!
//! Exploration is exhaustive but bounded: [`Builder::max_iterations`]
//! caps the number of schedules and [`Builder::max_depth`] the number
//! of scheduling decisions per schedule. Exceeding either bound panics
//! — a model that trips the bound must be shrunk explicitly, never
//! silently truncated.
//!
//! # Examples
//!
//! ```
//! use interleave::sync::Mutex;
//! use std::sync::Arc;
//!
//! // Two threads increment a shared counter under a mutex: the total
//! // is 2 under *every* interleaving.
//! let report = interleave::model(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             interleave::thread::spawn(move || {
//!                 let mut c = counter.lock().unwrap();
//!                 *c += 1;
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(*counter.lock().unwrap(), 2);
//! });
//! assert!(report.iterations >= 2, "both acquisition orders explored");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{model, Builder, Report};
