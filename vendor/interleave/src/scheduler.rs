//! The DFS schedule explorer behind [`model`] and the shims' logical
//! state (who owns which mutex, who waits on which condvar).
//!
//! One iteration = one schedule: every model thread is a real OS
//! thread, but only the thread the scheduler marked *active* makes
//! progress; everyone else parks on the scheduler condvar. At each
//! instrumented operation the active thread re-enters the scheduler,
//! which consults the current schedule prefix (replay) or extends it
//! (exploration) to pick the next runnable thread. After the iteration
//! finishes, the deepest decision with untried alternatives is advanced
//! and the model is rerun — classic depth-first enumeration.

use std::cell::RefCell;
use std::panic::resume_unwind;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel for "no active thread" (iteration finished or aborted).
const NONE: usize = usize::MAX;

/// Panic payload used to tear down parked threads when an iteration
/// aborts (deadlock or bound exceeded). Carried through `panic_any`, so
/// the thread wrappers can tell it apart from user assertion failures.
struct ModelAbort;

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The per-thread handle into the active model: which model, which
/// thread id. `None` on threads outside any model — the shims then
/// pass straight through to `std`.
#[derive(Clone, Debug)]
pub(crate) struct ThreadCtx {
    pub(crate) model: Arc<ModelCtx>,
    pub(crate) tid: usize,
}

/// The model context the calling thread belongs to, if any.
pub(crate) fn current() -> Option<ThreadCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<ThreadCtx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Can be scheduled.
    Runnable,
    /// Blocked acquiring the mutex with this logical id.
    BlockedMutex(usize),
    /// Parked on the condvar with this logical id (awaiting a notify).
    WaitingCv(usize),
    /// Blocked joining the thread with this id.
    BlockedJoin(usize),
    /// Ran to completion (or unwound).
    Finished,
}

/// One scheduling decision: which of `choices` runnable threads was
/// picked. Only recorded when there was an actual choice (≥ 2).
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    choices: usize,
}

#[derive(Debug, Default)]
struct Sched {
    threads: Vec<TState>,
    /// Whether the thread unwound with a user panic (not [`ModelAbort`]).
    panicked: Vec<bool>,
    /// Whether some `join` observed the thread's outcome.
    observed: Vec<bool>,
    active: usize,
    /// Decision indices to replay this iteration (DFS prefix).
    prefix: Vec<usize>,
    /// Decisions actually taken this iteration.
    decisions: Vec<Decision>,
    /// How many prefix entries have been consumed.
    cursor: usize,
    /// Set when the iteration is torn down early; the reason survives
    /// for the report.
    abort: Option<String>,
    mutex_owner: Vec<Option<usize>>,
    cv_waiters: Vec<Vec<usize>>,
    max_depth: usize,
}

impl Sched {
    /// Picks the next thread to run. Must be called with the caller's
    /// own state already updated (blocked / finished / still runnable).
    fn schedule_next(&mut self) {
        if self.abort.is_some() {
            self.active = NONE;
            return;
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, TState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if !self.threads.iter().all(|t| matches!(t, TState::Finished)) {
                self.abort = Some(self.describe_deadlock());
            }
            self.active = NONE;
            return;
        }
        let k = if runnable.len() == 1 {
            0
        } else {
            if self.decisions.len() >= self.max_depth {
                self.abort = Some(format!(
                    "schedule exceeded max_depth = {} decisions",
                    self.max_depth
                ));
                self.active = NONE;
                return;
            }
            let k = if self.cursor < self.prefix.len() {
                self.prefix[self.cursor]
            } else {
                0
            };
            self.cursor += 1;
            self.decisions.push(Decision {
                chosen: k,
                choices: runnable.len(),
            });
            k
        };
        self.active = runnable[k];
    }

    fn describe_deadlock(&self) -> String {
        let stuck: Vec<String> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t, TState::Finished))
            .map(|(i, t)| match t {
                TState::BlockedMutex(m) => format!("thread {i} blocked on mutex {m}"),
                TState::WaitingCv(c) => format!("thread {i} waiting on condvar {c}"),
                TState::BlockedJoin(j) => format!("thread {i} joining thread {j}"),
                other => format!("thread {i} in state {other:?}"),
            })
            .collect();
        format!("deadlock: {}", stuck.join(", "))
    }

    fn chosen(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| matches!(t, TState::Finished))
    }
}

/// One model run's shared state: the logical scheduler plus the condvar
/// every parked model thread sleeps on.
#[derive(Debug)]
pub(crate) struct ModelCtx {
    /// Globally unique per iteration; shim objects use it to detect
    /// stale logical ids from earlier iterations.
    pub(crate) epoch: u64,
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl ModelCtx {
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks until the scheduler marks `me` active. Returns the guard
    /// and `true` on success; `(guard, false)` when the iteration
    /// aborted and the caller is already unwinding (degrade to no-op).
    /// A non-unwinding caller is torn down with a [`ModelAbort`] panic.
    fn wait_until_active<'a>(
        &'a self,
        mut guard: MutexGuard<'a, Sched>,
        me: usize,
    ) -> (MutexGuard<'a, Sched>, bool) {
        loop {
            if guard.abort.is_some() {
                if std::thread::panicking() {
                    return (guard, false);
                }
                drop(guard);
                std::panic::panic_any(ModelAbort);
            }
            if guard.active == me {
                return (guard, true);
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain scheduling point: the caller stays runnable, the
    /// scheduler picks who goes next (possibly the caller again).
    /// Returns `false` when the iteration aborted mid-unwind.
    pub(crate) fn yield_op(&self, me: usize) -> bool {
        let mut s = self.lock();
        if s.abort.is_some() && std::thread::panicking() {
            return false;
        }
        s.schedule_next();
        self.cv.notify_all();
        let (_s, ok) = self.wait_until_active(s, me);
        ok
    }

    /// Registers a fresh logical mutex, returning its id.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutex_owner.push(None);
        s.mutex_owner.len() - 1
    }

    /// Registers a fresh logical condvar, returning its id.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut s = self.lock();
        s.cv_waiters.push(Vec::new());
        s.cv_waiters.len() - 1
    }

    /// Logically acquires mutex `id` for `me`, scheduling through
    /// contention. Returns `false` when the iteration aborted and no
    /// logical acquisition happened (caller falls back to raw `std`).
    pub(crate) fn mutex_lock(&self, me: usize, id: usize) -> bool {
        if !self.yield_op(me) {
            return false;
        }
        let mut s = self.lock();
        loop {
            if s.abort.is_some() && std::thread::panicking() {
                return false;
            }
            if s.mutex_owner[id].is_none() {
                s.mutex_owner[id] = Some(me);
                return true;
            }
            s.threads[me] = TState::BlockedMutex(id);
            s.schedule_next();
            self.cv.notify_all();
            let (g, ok) = self.wait_until_active(s, me);
            if !ok {
                return false;
            }
            s = g;
        }
    }

    /// Logically releases mutex `id`, unblocking its waiters. Never a
    /// scheduling point (the releaser's next instrumented op is), and
    /// safe to call during unwinds and aborts.
    pub(crate) fn mutex_unlock(&self, me: usize, id: usize) {
        let mut s = self.lock();
        debug_assert_eq!(s.mutex_owner[id], Some(me), "unlock by non-owner");
        s.mutex_owner[id] = None;
        for t in &mut s.threads {
            if *t == TState::BlockedMutex(id) {
                *t = TState::Runnable;
            }
        }
    }

    /// Condvar wait: logically releases mutex `mx`, parks on condvar
    /// `cv` until notified, then reacquires `mx`. Returns `false` on
    /// abort (no logical state held).
    pub(crate) fn condvar_wait(&self, me: usize, cv: usize, mx: usize) -> bool {
        {
            let mut s = self.lock();
            if s.abort.is_some() {
                if std::thread::panicking() {
                    return false;
                }
                drop(s);
                std::panic::panic_any(ModelAbort);
            }
            debug_assert_eq!(s.mutex_owner[mx], Some(me), "wait without the lock");
            s.mutex_owner[mx] = None;
            for t in &mut s.threads {
                if *t == TState::BlockedMutex(mx) {
                    *t = TState::Runnable;
                }
            }
            s.cv_waiters[cv].push(me);
            s.threads[me] = TState::WaitingCv(cv);
            s.schedule_next();
            self.cv.notify_all();
            let (_g, ok) = self.wait_until_active(s, me);
            if !ok {
                return false;
            }
        }
        // Notified and scheduled: reacquire the mutex (its own
        // scheduling point, racing any other acquirer — explored).
        self.mutex_lock(me, mx)
    }

    /// Wakes every waiter of condvar `cv`. A scheduling point.
    pub(crate) fn condvar_notify_all(&self, me: usize, cv: usize) -> bool {
        if !self.yield_op(me) {
            return false;
        }
        let mut s = self.lock();
        let waiters = std::mem::take(&mut s.cv_waiters[cv]);
        for w in waiters {
            if s.threads[w] == TState::WaitingCv(cv) {
                s.threads[w] = TState::Runnable;
            }
        }
        true
    }

    /// Wakes the longest-waiting waiter of condvar `cv` (FIFO — the
    /// *choice* of waiter is not explored; protocols relying on
    /// `notify_one` fairness should model with `notify_all`).
    pub(crate) fn condvar_notify_one(&self, me: usize, cv: usize) -> bool {
        if !self.yield_op(me) {
            return false;
        }
        let mut s = self.lock();
        while !s.cv_waiters[cv].is_empty() {
            let w = s.cv_waiters[cv].remove(0);
            if s.threads[w] == TState::WaitingCv(cv) {
                s.threads[w] = TState::Runnable;
                break;
            }
        }
        true
    }

    /// Registers a newly spawned thread as runnable, returning its id.
    /// The spawning thread should [`Self::yield_op`] afterwards so the
    /// child can be scheduled immediately.
    pub(crate) fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(TState::Runnable);
        s.panicked.push(false);
        s.observed.push(false);
        s.threads.len() - 1
    }

    /// First thing a model thread does: park until scheduled.
    pub(crate) fn thread_start(&self, me: usize) {
        let s = self.lock();
        let _ = self.wait_until_active(s, me);
    }

    /// Last thing a model thread does (from its exit guard): mark
    /// itself finished, release joiners, hand off the schedule.
    pub(crate) fn thread_exit(&self, me: usize, panicked: bool) {
        let mut s = self.lock();
        s.threads[me] = TState::Finished;
        s.panicked[me] = panicked;
        for t in &mut s.threads {
            if *t == TState::BlockedJoin(me) {
                *t = TState::Runnable;
            }
        }
        s.schedule_next();
        self.cv.notify_all();
    }

    /// Blocks `me` until thread `target` finishes, and marks the
    /// target's outcome observed. Returns `false` on abort.
    pub(crate) fn join(&self, me: usize, target: usize) -> bool {
        if !self.yield_op(me) {
            return false;
        }
        let mut s = self.lock();
        loop {
            if s.abort.is_some() && std::thread::panicking() {
                return false;
            }
            if matches!(s.threads[target], TState::Finished) {
                s.observed[target] = true;
                return true;
            }
            s.threads[me] = TState::BlockedJoin(target);
            s.schedule_next();
            self.cv.notify_all();
            let (g, ok) = self.wait_until_active(s, me);
            if !ok {
                return false;
            }
            s = g;
        }
    }

    /// Blocks the orchestrator (a non-model thread) until every model
    /// thread finished, then returns the iteration's outcome.
    fn wait_iteration_done(&self) -> IterationOutcome {
        let mut s = self.lock();
        while !s.all_finished() {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        let unjoined_panic = s
            .panicked
            .iter()
            .zip(&s.observed)
            .enumerate()
            .find(|(_, (&p, &o))| p && !o)
            .map(|(i, _)| i);
        IterationOutcome {
            decisions: s.decisions.clone(),
            schedule: s.chosen(),
            abort: s.abort.clone(),
            unjoined_panic,
        }
    }
}

struct IterationOutcome {
    decisions: Vec<Decision>,
    schedule: Vec<usize>,
    abort: Option<String>,
    unjoined_panic: Option<usize>,
}

/// Runs `f` on a fresh model thread with `CURRENT` installed, calling
/// [`ModelCtx::thread_exit`] however the closure leaves (return or
/// unwind). Used for both free-standing and scoped model threads.
pub(crate) fn run_model_thread<T>(ctx: Arc<ModelCtx>, tid: usize, f: impl FnOnce() -> T) -> T {
    struct ExitGuard {
        ctx: Arc<ModelCtx>,
        tid: usize,
    }
    impl Drop for ExitGuard {
        fn drop(&mut self) {
            // ModelAbort teardown panics are bookkeeping, not failures.
            let user_panic = std::thread::panicking();
            self.ctx.thread_exit(self.tid, user_panic);
            set_current(None);
        }
    }
    set_current(Some(ThreadCtx {
        model: Arc::clone(&ctx),
        tid,
    }));
    let guard = ExitGuard { ctx, tid };
    guard.ctx.thread_start(tid);
    f()
}

/// Exploration statistics returned by [`model`] / [`Builder::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: usize,
}

/// Configures the exploration bounds of a model run.
///
/// # Examples
///
/// ```
/// let report = interleave::Builder::new()
///     .max_iterations(10_000)
///     .check(|| {
///         // nothing to schedule: exactly one iteration
///     });
/// assert_eq!(report.iterations, 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    max_iterations: usize,
    max_depth: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_iterations: 1 << 20,
            max_depth: 10_000,
        }
    }
}

static EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Builder {
    /// Default bounds: 2²⁰ schedules, 10 000 decisions per schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of schedules; exceeding it panics — exploration
    /// is never silently truncated.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Caps the scheduling decisions per schedule.
    pub fn max_depth(mut self, n: usize) -> Self {
        self.max_depth = n;
        self
    }

    /// Runs `f` under every schedule within the bounds. Panics (with
    /// the offending schedule) on a model assertion failure, a
    /// deadlock, or an exceeded bound.
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "interleave: exceeded max_iterations = {} schedules",
                self.max_iterations
            );
            let ctx = Arc::new(ModelCtx {
                epoch: EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                sched: Mutex::new(Sched {
                    active: 0,
                    prefix: prefix.clone(),
                    max_depth: self.max_depth,
                    ..Default::default()
                }),
                cv: Condvar::new(),
            });
            let root = ctx.register_thread();
            debug_assert_eq!(root, 0);
            let handle = {
                let ctx = Arc::clone(&ctx);
                let f = Arc::clone(&f);
                std::thread::Builder::new()
                    .name("interleave-root".into())
                    .spawn(move || run_model_thread(ctx, root, move || f()))
                    .unwrap_or_else(|e| panic!("interleave: cannot spawn model root: {e}"))
            };
            let outcome = ctx.wait_iteration_done();
            let root_result = handle.join();
            if let Some(reason) = outcome.abort {
                panic!(
                    "interleave: {reason} (schedule {:?}, iteration {iterations})",
                    outcome.schedule
                );
            }
            if let Err(payload) = root_result {
                if !payload.is::<ModelAbort>() {
                    eprintln!(
                        "interleave: model failed on schedule {:?} (iteration {iterations})",
                        outcome.schedule
                    );
                    resume_unwind(payload);
                }
            }
            if let Some(tid) = outcome.unjoined_panic {
                panic!(
                    "interleave: thread {tid} panicked and was never joined \
                     (schedule {:?}, iteration {iterations})",
                    outcome.schedule
                );
            }
            match next_prefix(&outcome.decisions) {
                Some(p) => prefix = p,
                None => return Report { iterations },
            }
        }
    }
}

/// The DFS step: advance the deepest decision with untried
/// alternatives; `None` when the whole tree has been visited.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    let mut d = decisions.to_vec();
    while let Some(last) = d.pop() {
        if last.chosen + 1 < last.choices {
            let mut p: Vec<usize> = d.iter().map(|x| x.chosen).collect();
            p.push(last.chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Explores every interleaving of `f`'s threads with default bounds.
/// See the [crate docs](crate) for the execution model.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prefix_walks_the_tree_depth_first() {
        let d = |chosen, choices| Decision { chosen, choices };
        assert_eq!(next_prefix(&[]), None);
        assert_eq!(next_prefix(&[d(0, 2)]), Some(vec![1]));
        assert_eq!(next_prefix(&[d(1, 2)]), None);
        assert_eq!(next_prefix(&[d(0, 2), d(1, 2)]), Some(vec![1]));
        assert_eq!(next_prefix(&[d(0, 3), d(2, 3)]), Some(vec![1]));
        assert_eq!(next_prefix(&[d(2, 3), d(0, 2)]), Some(vec![2, 1]));
    }

    #[test]
    fn a_model_with_no_choices_runs_once() {
        let report = model(|| {
            let x = 21 * 2;
            assert_eq!(x, 42);
        });
        assert_eq!(report.iterations, 1);
    }
}
