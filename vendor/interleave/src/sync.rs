//! Instrumented drop-in stand-ins for [`std::sync`] primitives.
//!
//! Inside a [`model`](crate::model) every operation is a scheduling
//! point the explorer branches on; outside, everything delegates to the
//! real `std` primitive, so code compiled against these shims behaves
//! identically in production builds and ordinary tests.
//!
//! API-compatibility notes: `lock`/`wait` return [`std::sync::LockResult`]
//! like their `std` counterparts but never poison (a model iteration
//! that unwinds is torn down and reported by the explorer instead), so
//! the usual `unwrap_or_else(|e| e.into_inner())` call sites compile
//! unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::LockResult;

use crate::scheduler::{self, ThreadCtx};

/// Logical-id registration shared by [`Mutex`] and [`Condvar`]: a shim
/// object learns its per-model id lazily, on first use inside that
/// model, and re-registers when it encounters a fresh model epoch.
/// (An object must not be used by two *concurrently running* models.)
#[derive(Debug, Default)]
struct ModelId {
    epoch: AtomicU64,
    id: AtomicU64,
}

impl ModelId {
    fn get_or_register(&self, t: &ThreadCtx, register: impl FnOnce() -> usize) -> usize {
        if self.epoch.load(Ordering::Relaxed) == t.model.epoch {
            return usize::try_from(self.id.load(Ordering::Relaxed)).unwrap_or(usize::MAX);
        }
        let id = register();
        self.id.store(id as u64, Ordering::Relaxed);
        self.epoch.store(t.model.epoch, Ordering::Relaxed);
        id
    }
}

/// Instrumented [`std::sync::Mutex`]: inside a model, acquisition order
/// is a scheduling decision the explorer enumerates; outside a model it
/// *is* a `std` mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model_id: ModelId,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            model_id: ModelId::default(),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    fn id(&self, t: &ThreadCtx) -> usize {
        self.model_id
            .get_or_register(t, || t.model.register_mutex())
    }

    /// Acquires the mutex, scheduling through contention when a model
    /// is active. Never returns `Err`: see the [module docs](self).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match scheduler::current() {
            Some(t) => {
                let id = self.id(&t);
                if t.model.mutex_lock(t.tid, id) {
                    // Execution is serialized and the logical owner is
                    // us, so the std lock must be free: the previous
                    // guard released it before its logical unlock.
                    let inner = self.inner.try_lock().unwrap_or_else(|_| {
                        panic!("interleave: std lock held without logical owner")
                    });
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        model: Some((t, id)),
                    })
                } else {
                    // Aborted mid-unwind: degrade to the raw primitive
                    // so destructors can still make progress.
                    let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        model: None,
                    })
                }
            }
            None => {
                let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                })
            }
        }
    }
}

/// RAII guard for [`Mutex`]; releases the lock (std first, then the
/// logical claim) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    /// Back-reference so `Condvar::wait` can reacquire after dropping.
    lock: &'a Mutex<T>,
    /// `Option` so `Condvar::wait` and `Drop` can release the std
    /// guard before the logical state changes hands.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(ThreadCtx, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the std lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the std lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: release the std lock before the logical claim,
        // so whoever logically acquires next finds the std lock free.
        self.inner = None;
        if let Some((t, id)) = self.model.take() {
            t.model.mutex_unlock(t.tid, id);
        }
    }
}

/// Instrumented [`std::sync::Condvar`]. Inside a model, `wait` parks
/// the thread in the scheduler (no spurious wakeups are generated) and
/// `notify_*` are scheduling points; outside, it is a `std` condvar.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    model_id: ModelId,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    fn id(&self, t: &ThreadCtx) -> usize {
        self.model_id
            .get_or_register(t, || t.model.register_condvar())
    }

    /// Releases `guard`'s mutex, parks until notified, reacquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock: &'a Mutex<T> = guard.lock;
        match guard.model.take() {
            Some((t, mx_id)) => {
                let cv_id = self.id(&t);
                // Stripping `model` disarmed the guard's logical
                // unlock; dropping the guard releases the std lock.
                // `condvar_wait` then handles the logical release +
                // park + logical reacquire in one protocol step.
                drop(guard);
                if t.model.condvar_wait(t.tid, cv_id, mx_id) {
                    let inner = lock.inner.try_lock().unwrap_or_else(|_| {
                        panic!("interleave: std lock held without logical owner")
                    });
                    Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: Some((t, mx_id)),
                    })
                } else {
                    // Aborted: raw reacquire so unwinding callers can
                    // re-check their predicates and bail.
                    let inner = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: None,
                    })
                }
            }
            None => {
                let std_guard = guard.inner.take().expect("guard holds the std lock");
                // `guard` is now inert (no std guard, no model claim);
                // dropping it is a no-op, freeing the borrow for the
                // rebuilt guard below.
                drop(guard);
                let back = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock,
                    inner: Some(back),
                    model: None,
                })
            }
        }
    }

    /// Wakes every thread parked on this condvar.
    pub fn notify_all(&self) {
        if let Some(t) = scheduler::current() {
            let id = self.id(&t);
            t.model.condvar_notify_all(t.tid, id);
        } else {
            self.inner.notify_all();
        }
    }

    /// Wakes one thread parked on this condvar (FIFO inside a model;
    /// the explorer does not branch on *which* waiter wakes).
    pub fn notify_one(&self) {
        if let Some(t) = scheduler::current() {
            let id = self.id(&t);
            t.model.condvar_notify_one(t.tid, id);
        } else {
            self.inner.notify_one();
        }
    }
}

/// Instrumented sequentially-consistent atomics. Inside a model each
/// operation is a scheduling point; execution is serialized, so every
/// ordering argument is effectively `SeqCst` (the strongest — models
/// verify SC executions only, which is sound for the mutex/condvar
/// protocols this workspace checks).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::scheduler;

    fn yield_op() {
        if let Some(t) = scheduler::current() {
            t.model.yield_op(t.tid);
        }
    }

    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        /// Creates a new atomic with the given initial value.
        pub fn new(v: usize) -> Self {
            AtomicUsize {
                inner: std::sync::atomic::AtomicUsize::new(v),
            }
        }

        /// Atomic load (a scheduling point inside a model).
        pub fn load(&self, order: Ordering) -> usize {
            yield_op();
            self.inner.load(order)
        }

        /// Atomic store (a scheduling point inside a model).
        pub fn store(&self, v: usize, order: Ordering) {
            yield_op();
            self.inner.store(v, order);
        }

        /// Atomic fetch-add (a scheduling point inside a model).
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            yield_op();
            self.inner.fetch_add(v, order)
        }

        /// Atomic compare-exchange (a scheduling point inside a model).
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            success: Ordering,
            failure: Ordering,
        ) -> Result<usize, usize> {
            yield_op();
            self.inner.compare_exchange(current, new, success, failure)
        }
    }

    /// Instrumented [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub fn new(v: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load (a scheduling point inside a model).
        pub fn load(&self, order: Ordering) -> bool {
            yield_op();
            self.inner.load(order)
        }

        /// Atomic store (a scheduling point inside a model).
        pub fn store(&self, v: bool, order: Ordering) {
            yield_op();
            self.inner.store(v, order);
        }

        /// Atomic swap (a scheduling point inside a model).
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            yield_op();
            self.inner.swap(v, order)
        }
    }
}
