//! Behavioural suite for the interleaving explorer: exhaustiveness,
//! bug-finding power (it must *fail* on genuinely racy protocols),
//! deadlock detection, condvar semantics, scoped threads, and the
//! passthrough contract outside models.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::sync::{Condvar, Mutex};
use interleave::{model, thread, Builder};

#[test]
fn mutex_counter_is_correct_under_every_schedule() {
    let report = model(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut c = counter.lock().unwrap();
                    *c += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 3);
    });
    // Three threads racing one lock: strictly more than one schedule.
    assert!(report.iterations > 1, "explored {}", report.iterations);
}

#[test]
fn finds_the_lost_update_in_a_check_then_act_race() {
    // Classic TOCTOU: read the counter, drop the lock, write back
    // read+1. Exploration must find the schedule where both threads
    // read 0 and the final value is 1, not 2.
    let failed = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let read = *counter.lock().unwrap();
                        *counter.lock().unwrap() = read + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 2, "lost update");
        });
    }));
    assert!(failed.is_err(), "the race must be found");
}

#[test]
fn finds_the_lost_update_between_atomic_load_and_store() {
    let failed = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let read = counter.load(Ordering::SeqCst);
                        counter.store(read + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    assert!(failed.is_err(), "the atomic race must be found");
}

#[test]
fn fetch_add_has_no_lost_update() {
    model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn detects_the_classic_ab_ba_deadlock() {
    let failed = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                })
            };
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join().unwrap();
        });
    }));
    let payload = failed.expect_err("AB/BA ordering must deadlock in some schedule");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock"),
        "diagnostic names the deadlock: {msg}"
    );
}

#[test]
fn condvar_handshake_never_misses_a_wakeup() {
    // Proper predicate-loop handshake: must pass under every schedule,
    // including notify-before-wait (the waiter then never parks).
    let report = model(|| {
        let slot = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let (lock, cv) = &*slot;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            })
        };
        {
            let (lock, cv) = &*slot;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
        }
        setter.join().unwrap();
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
}

#[test]
fn detects_the_missed_wakeup_when_the_wait_has_no_predicate() {
    // Broken handshake: waiter parks unconditionally. The schedule
    // where the setter notifies *before* the waiter parks leaves the
    // waiter asleep forever — a deadlock the explorer must surface.
    let failed = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let (lock, cv) = &*slot;
                    *lock.lock().unwrap() = true;
                    cv.notify_all();
                })
            };
            {
                let (lock, cv) = &*slot;
                let ready = lock.lock().unwrap();
                // BUG under test: no predicate re-check loop.
                let _ready = cv.wait(ready).unwrap();
            }
            setter.join().unwrap();
        });
    }));
    let payload = failed.expect_err("missed wakeup must be detected");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "diagnostic: {msg}");
}

#[test]
fn scoped_threads_share_borrows_and_preserve_results() {
    model(|| {
        let items = [1u64, 2, 3];
        let results = Arc::new(Mutex::new(vec![0u64; items.len()]));
        thread::scope(|s| {
            let handles: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let results = Arc::clone(&results);
                    s.spawn(move || {
                        results.lock().unwrap()[i] = x * 10;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(*results.lock().unwrap(), vec![10, 20, 30]);
    });
}

#[test]
fn join_observes_the_child_result_and_panic() {
    model(|| {
        let ok = thread::spawn(|| 41 + 1);
        assert_eq!(ok.join().unwrap(), 42);
    });
    // A child panic surfaces through join as Err, like std.
    model(|| {
        let bad = thread::spawn(|| panic!("child failed"));
        let err = bad.join().expect_err("panic must reach join");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "child failed");
    });
}

#[test]
fn iteration_bound_is_enforced_not_truncated() {
    let failed = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().max_iterations(2).check(|| {
            let m = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        *m.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }));
    assert!(failed.is_err(), "exceeding max_iterations must panic");
}

#[test]
fn passthrough_outside_models_behaves_like_std() {
    // No model active: shims must be plain std primitives.
    let m = Mutex::new(5u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);

    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let waiter = {
        let pair = Arc::clone(&pair);
        thread::spawn(move || {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            true
        })
    };
    {
        let (lock, cv) = &*pair;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    assert!(waiter.join().unwrap());

    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.load(Ordering::SeqCst), 3);

    let total = thread::scope(|s| {
        let h1 = s.spawn(|| 20);
        let h2 = s.spawn(|| 22);
        h1.join().unwrap() + h2.join().unwrap()
    });
    assert_eq!(total, 42);
}

#[test]
fn exploration_counts_match_the_schedule_tree() {
    // One thread, no contention: exactly one schedule.
    assert_eq!(model(|| {}).iterations, 1);
    let single = model(|| {
        let m = Mutex::new(0u32);
        *m.lock().unwrap() += 1;
    });
    assert_eq!(single.iterations, 1, "no second thread, no choice");
    // Two uncontended-but-concurrent threads explore > 1 schedule.
    let two = model(|| {
        let h = thread::spawn(|| {
            let m = Mutex::new(0u32);
            *m.lock().unwrap() += 1;
        });
        let m = Mutex::new(0u32);
        *m.lock().unwrap() += 1;
        h.join().unwrap();
    });
    assert!(two.iterations > 1, "explored {}", two.iterations);
}
