//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The container image has no crates-io access, so the workspace
//! vendors a minimal wall-clock benchmark harness with the same surface:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements report mean, median and sample standard deviation over
//! `sample_size` timed samples ([`summarize`] / [`Stats`]) — good enough
//! for relative comparisons while the real statistical engine is
//! unavailable offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// stand-in always rebuilds the input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Prevents the optimizer from eliding a value (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark registry / runner (the `criterion::Criterion` analogue).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints mean, median and standard
    /// deviation of the per-iteration time across the samples.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: find an iteration count that runs long
        // enough to time meaningfully but keeps total cost bounded.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(8);
        }
        // Measurement passes.
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let stats = summarize(&samples);
        println!(
            "{name:<48} {:>12} / iter  (median {}, σ {})",
            format_time(stats.mean),
            format_time(stats.median),
            format_time(stats.stddev),
        );
        self
    }
}

/// Summary statistics of a sample set (seconds, or any unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (mean of the two central samples for even counts).
    pub median: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for one sample).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

/// Computes [`Stats`] over a sample set.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn summarize(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "summarize needs at least one sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    let stddev = if n < 2 {
        0.0
    } else {
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    };
    Stats {
        mean,
        median,
        stddev,
        min: sorted[0],
        max: sorted[n - 1],
        n,
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group (both the positional and the
/// `name/config/targets` forms of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_even_count() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        // Sample variance = (2.25 + 0.25 + 0.25 + 2.25) / 3 = 5/3.
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max, s.n), (1.0, 4.0, 4));
    }

    #[test]
    fn summarize_odd_count_and_unsorted_input() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert!((s.median - 2.0).abs() < 1e-12);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_single_sample_has_zero_stddev() {
        let s = summarize(&[7.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.n, 1);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn summarize_empty_panics() {
        summarize(&[]);
    }

    #[test]
    fn bench_function_runs_and_returns_self() {
        let mut c = Criterion::default().sample_size(2);
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)))
            .bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
            });
        count += 1;
        assert_eq!(count, 1);
    }
}
