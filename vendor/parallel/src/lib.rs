//! Hand-rolled scoped-thread fan-out — the std-only stand-in for a
//! rayon-style thread pool used by the HATT parallel construction
//! engine (the container has no crates-io access, so `rayon` itself is
//! out of reach; like `vendor/{rand,proptest,criterion}` this crate
//! covers exactly the subset the workspace needs).
//!
//! The model is deliberately tiny: every call is one fork/join over
//! [`std::thread::scope`]. Workers pull item indices from a shared
//! queue, each worker accumulates `(index, result)` pairs locally, and
//! the caller reassembles results **in input order** — so the output of
//! [`par_map`] is bit-identical to the sequential `iter().map()`
//! whatever the thread interleaving, which is what the determinism
//! harness (`tests/parallel_determinism.rs`) pins.
//!
//! The worker count comes from [`max_threads`]: the `HATT_THREADS`
//! environment variable when it parses to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. A resolved count of 1 (or a
//! single-item input) short-circuits to a plain sequential loop on the
//! calling thread — no threads are spawned, so `HATT_THREADS=1` really
//! is the sequential engine, not a one-worker pool.
//!
//! A panic inside a worker is re-raised on the caller via
//! [`std::panic::resume_unwind`] after the scope joins, matching the
//! sequential behaviour closely enough for `#[should_panic]` tests.
//!
//! # Examples
//!
//! ```
//! let squares = parallel::par_map_with(4, &[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Results always come back in input order, not completion order.
//! let labelled = parallel::par_map_indexed_with(2, &["a", "b"], |i, s| format!("{i}:{s}"));
//! assert_eq!(labelled, vec!["0:a", "1:b"]);
//! ```

#![warn(missing_docs)]

use std::panic::resume_unwind;

// Under `--cfg interleave` the sync/thread primitives are swapped for
// the instrumented shims from `vendor/interleave`, letting the model
// checker exhaustively explore fan-out schedules. The shims pass
// through to `std` outside a model, so behaviour is unchanged for
// ordinary tests even in an interleave build.
#[cfg(interleave)]
use interleave::{sync::Mutex, thread};
#[cfg(not(interleave))]
use std::{sync::Mutex, thread};

/// Hardware parallelism of the host (at least 1); the fallback worker
/// count when `HATT_THREADS` is unset.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses a `HATT_THREADS`-style override: a positive integer wins,
/// anything else (unset, empty, `0`, `auto`, garbage) falls back to the
/// hardware count. Split out so the policy is unit-testable without
/// mutating process environment.
pub fn threads_from_override(raw: Option<&str>, fallback: usize) -> usize {
    match raw.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => fallback.max(1),
    }
}

/// The worker count every `par_*` entry point defaults to:
/// `HATT_THREADS` when set to a positive integer, else
/// [`available_workers`]. Read on every call (cheap), so tests and
/// harnesses may flip the variable between constructions.
pub fn max_threads() -> usize {
    threads_from_override(
        std::env::var("HATT_THREADS").ok().as_deref(),
        available_workers(),
    )
}

/// Maps `f` over `items` on up to [`max_threads`] scoped workers,
/// returning results in input order.
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    par_map_with(max_threads(), items, f)
}

/// [`par_map`] with an explicit worker cap (a cap of 1 runs inline on
/// the calling thread).
pub fn par_map_with<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    workers: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    par_map_indexed_with(workers, items, |_, item| f(item))
}

/// Maps `f(index, &item)` over `items` on up to [`max_threads`] scoped
/// workers, returning results in input order.
pub fn par_map_indexed<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
    items: &[T],
    f: F,
) -> Vec<R> {
    par_map_indexed_with(max_threads(), items, f)
}

/// [`par_map_indexed`] with an explicit worker cap.
pub fn par_map_indexed_with<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
    workers: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    let n = items.len();
    if effective_workers(workers, n) <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queue = Mutex::new(items.iter().enumerate());
    fan_out(effective_workers(workers, n), n, &queue, &f)
}

/// Like [`par_map_indexed_with`] but hands each worker *exclusive
/// mutable* access to its item — the shape the beam search needs, where
/// every surviving beam state owns a `TermEngine` whose memo tables the
/// candidate scan mutates.
pub fn par_map_mut_with<T: Send, R: Send, F: Fn(usize, &mut T) -> R + Sync>(
    workers: usize,
    items: &mut [T],
    f: F,
) -> Vec<R> {
    let n = items.len();
    if effective_workers(workers, n) <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // `IterMut` yields `&'a mut T` borrowed from the slice (not from the
    // mutex guard), so handing items out through a locked iterator is a
    // safe, std-only work queue with exclusive element access.
    let queue = Mutex::new(items.iter_mut().enumerate());
    fan_out(effective_workers(workers, n), n, &queue, &|i, t: &mut T| {
        f(i, t)
    })
}

fn effective_workers(requested: usize, items: usize) -> usize {
    requested.min(items).max(1)
}

/// The shared fork/join core: `workers` scoped threads drain `queue`,
/// stash `(index, result)` pairs locally, and the caller reassembles
/// them by index. Worker panics are re-raised after the scope joins.
fn fan_out<I, T, R, F>(workers: usize, n: usize, queue: &Mutex<I>, f: &F) -> Vec<R>
where
    I: Iterator<Item = (usize, T)> + Send,
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunks = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Take the next item while holding the lock only
                        // for the pop, never during `f`.
                        let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                        match next {
                            Some((i, item)) => out.push((i, f(i, item))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        let mut chunks = Vec::with_capacity(workers);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(chunk) => chunks.push(chunk),
                Err(e) => panic = Some(e),
            }
        }
        if let Some(e) = panic {
            resume_unwind(e);
        }
        chunks
    });
    for (i, r) in chunks.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 8, 200] {
            let got = par_map_with(workers, &items, |x| x * 3 + 1);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = ["x", "y", "z"];
        let got = par_map_indexed_with(3, &items, |i, s| (i, s.to_string()));
        assert_eq!(got, vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]);
    }

    #[test]
    fn mut_variant_mutates_every_item_exactly_once() {
        let mut items: Vec<u64> = vec![0; 64];
        let visits = AtomicUsize::new(0);
        let got = par_map_mut_with(4, &mut items, |i, slot| {
            visits.fetch_add(1, Ordering::Relaxed);
            *slot += i as u64;
            *slot
        });
        assert_eq!(visits.load(Ordering::Relaxed), 64);
        assert_eq!(got, (0..64).collect::<Vec<u64>>());
        assert_eq!(items, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        let caller = std::thread::current().id();
        let ids = par_map_with(1, &[(); 5], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[7u8], |x| *x + 1), vec![8]);
    }

    #[test]
    fn override_parsing_policy() {
        assert_eq!(threads_from_override(Some("4"), 8), 4);
        assert_eq!(threads_from_override(Some(" 2 "), 8), 2);
        assert_eq!(threads_from_override(Some("1"), 8), 1);
        // Everything non-positive or non-numeric falls back.
        assert_eq!(threads_from_override(Some("0"), 8), 8);
        assert_eq!(threads_from_override(Some("auto"), 8), 8);
        assert_eq!(threads_from_override(Some(""), 8), 8);
        assert_eq!(threads_from_override(None, 8), 8);
        // The fallback itself is clamped to at least one worker.
        assert_eq!(threads_from_override(None, 0), 1);
        assert!(max_threads() >= 1);
        assert!(available_workers() >= 1);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            par_map_with(4, &(0..16).collect::<Vec<_>>(), |&x| {
                if x == 11 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }
}

/// Exhaustive schedule exploration of the fan-out core, compiled only
/// under `RUSTFLAGS="--cfg interleave"` (the CI `interleave` job). Each
/// model re-runs its body under *every* interleaving of the workers'
/// queue-lock acquisitions, so order preservation and exactly-once
/// delivery are verified against the full schedule tree, not one lucky
/// run.
#[cfg(all(test, interleave))]
mod interleave_models {
    use super::*;

    #[test]
    fn fan_out_preserves_order_under_every_schedule() {
        let report = interleave::model(|| {
            let items = [10u64, 20, 30];
            let got = par_map_with(2, &items, |x| x + 1);
            assert_eq!(got, vec![11, 21, 31]);
        });
        assert!(
            report.iterations > 1,
            "two workers over one queue must branch (explored {})",
            report.iterations
        );
    }

    #[test]
    fn mut_fan_out_hits_each_item_exactly_once_under_every_schedule() {
        interleave::model(|| {
            let mut items = [0u8; 3];
            let got = par_map_mut_with(2, &mut items, |i, slot| {
                *slot += 1;
                (i, *slot)
            });
            assert_eq!(got, vec![(0, 1), (1, 1), (2, 1)]);
            assert_eq!(items, [1, 1, 1], "each slot visited exactly once");
        });
    }

    #[test]
    fn worker_panic_reaches_caller_under_model_schedules() {
        // The panic fires in whichever worker draws index 1; every
        // schedule must re-raise it on the caller after the join.
        let result = std::panic::catch_unwind(|| {
            interleave::model(|| {
                par_map_with(2, &[0u8, 1, 2], |&x| {
                    if x == 1 {
                        panic!("boom");
                    }
                    x
                });
            });
        });
        assert!(
            result.is_err(),
            "worker panic must propagate out of the model"
        );
    }
}
