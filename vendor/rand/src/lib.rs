//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container image has no crates-io access, so the workspace
//! vendors a small, deterministic, dependency-free implementation with
//! the same names and signatures: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::index::sample`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 core of the real crate, but a
//! high-quality deterministic PRNG that is more than adequate for the
//! randomized tests, annealing search, and Monte-Carlo noise sampling in
//! this repository.

#![warn(missing_docs)]

/// Low-level source of random `u64`s (the `rand_core::RngCore` analogue).
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`]
/// (the `Standard` distribution analogue).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly sampleable over a bounded interval (the
/// `SampleUniform` analogue). Implemented by the primitive integer and
/// float types.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts (the `SampleRange` analogue).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the `rand::SeedableRng` analogue).
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{RngCore, SampleRange};

        /// A set of sampled indices (the `rand::seq::index::IndexVec`
        /// analogue).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set into a `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices from `0..length` in random
        /// order via a partial Fisher-Yates shuffle.
        ///
        /// # Panics
        /// Panics if `amount > length`, matching the real crate.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = (i..length).sample_single(&mut *rng);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let k = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = super::seq::index::sample(&mut rng, 10, 10).into_vec();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
