//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The container image has no crates-io access, so the workspace
//! vendors a small property-testing harness with the same surface:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   `pattern in strategy` bindings, and `#[test]` attributes;
//! * the [`Strategy`] trait with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`], implemented for numeric ranges, tuples,
//!   [`Just`], [`collection::vec`], [`bool::ANY`] and [`prop_oneof!`]
//!   unions;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case is
//! reported with its seed and case index so it can be replayed by
//! rerunning the deterministic harness.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the `proptest::test_runner::ProptestConfig`
/// analogue).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` and should not be counted.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (assumption not met).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

/// Result type threaded through a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value. Implementations must be deterministic in `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a clone of a fixed value (the `Just` analogue).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let k = rng.gen_range(0..self.options.len());
        self.options[k].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// Generates `Vec`s of values from `element`, with a length drawn
    /// from `size` (an exact `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Output of [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
        use rand::Rng;
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
            use rand::Rng;
            rng.gen()
        }
    }

    /// The `proptest::bool::ANY` analogue.
    pub const ANY: AnyBool = AnyBool;
}

/// Deterministic seed for one (test, case) pair: FNV-1a of the test name
/// mixed with the case index.
#[doc(hidden)]
pub fn case_seed(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drives one generated property test; called by [`proptest!`] expansions.
#[doc(hidden)]
pub fn run_cases<V>(
    config: &ProptestConfig,
    test_name: &str,
    strategy: &dyn Strategy<Value = V>,
    mut body: impl FnMut(V) -> TestCaseResult,
) {
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case: u64 = 0;
    while passed < config.cases {
        let seed = case_seed(test_name, case);
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case {case} (seed {seed:#x}): {msg}");
            }
        }
        case += 1;
    }
}

/// The property-test entry macro (the `proptest::proptest!` analogue).
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0usize..8, (a, b) in arb_pair()) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])+
       fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_cases(
                    &config,
                    stringify!($name),
                    &strategy,
                    |($($pat,)+)| {
                        let _ = $body;
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (the `prop_assert!` analogue).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "{} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among listed strategies (the `prop_oneof!` analogue).
/// All options must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Commonly used items (the `proptest::prelude` analogue).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..10, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8)], e in arb_even()) {
            let x: u8 = x;
            prop_assert!(x == 1 || x == 2);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn assume_rejects(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
