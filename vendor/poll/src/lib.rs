//! Hand-rolled readiness polling — the std-only stand-in for a
//! mio/epoll-style reactor backend used by the `hattd` event-loop
//! server (the container is offline, so neither `mio` nor `libc` is
//! reachable; like `vendor/{rand,proptest,criterion,parallel}` this
//! crate covers exactly the subset the workspace needs).
//!
//! The model is deliberately tiny and *level-triggered*: one call to
//! [`wait`] takes the full interest set (fd + read/write interest per
//! entry) and blocks until at least one entry is ready, a [`Waker`] is
//! poked from another thread, or the timeout elapses. There is no
//! registration state to keep in sync with the kernel — the caller
//! rebuilds the set each loop iteration, which is the right trade for
//! the few hundred connections `hattd` holds per event-loop worker.
//!
//! On Linux (`x86_64`, `aarch64`) the implementation is the raw
//! `ppoll(2)` syscall issued through inline assembly — no libc. An fd
//! with *empty* interest still reports hangup/error readiness, which is
//! how the event loop notices silently-dying peers on paused
//! connections. On any other target the fallback emulates readiness by
//! sleeping a short interval and reporting every entry ready; combined
//! with non-blocking sockets (reads/writes that answer `WouldBlock`)
//! that is functionally correct, merely busier — and it is documented
//! as degraded below.
//!
//! # Examples
//!
//! ```
//! use std::io::Write;
//! use std::os::fd::AsRawFd;
//!
//! let (mut a, b) = std::os::unix::net::UnixStream::pair()?;
//! let fds = [(b.as_raw_fd(), poll::Interest::READABLE)];
//! let mut ready = Vec::new();
//!
//! // Nothing buffered: a zero timeout reports nothing ready.
//! let n = poll::wait(&fds, Some(std::time::Duration::ZERO), &mut ready)?;
//! assert_eq!(n, 0);
//!
//! // One byte in flight: the read side becomes ready.
//! a.write_all(b"x")?;
//! let n = poll::wait(&fds, None, &mut ready)?;
//! assert_eq!(n, 1);
//! assert!(ready[0].readable);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// What the caller wants to be woken for on one fd. Hangup and error
/// conditions are always reported, even for an empty interest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer closed).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No interest: only hangup/error conditions are reported.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// The readiness reported for one fd of a [`wait`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Bytes are readable (or the read side reached EOF).
    pub readable: bool,
    /// Writes would make progress.
    pub writable: bool,
    /// The peer hung up.
    pub hangup: bool,
    /// The fd is in an error state (or not open).
    pub error: bool,
}

impl Readiness {
    /// Whether anything at all was reported.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.hangup || self.error
    }
}

/// Blocks until at least one entry of `fds` is ready or `timeout`
/// elapses (`None` blocks indefinitely — pair it with a [`Waker`] in
/// the set). On return, `out` holds one [`Readiness`] per input entry,
/// index-aligned with `fds`; the return value is the number of entries
/// with any readiness. A signal interruption reports zero entries ready
/// (the caller's loop re-polls).
///
/// # Errors
///
/// Propagates the underlying `ppoll` failure (`EINVAL`/`ENOMEM`-class
/// conditions; interruption is *not* an error).
pub fn wait(
    fds: &[(RawFd, Interest)],
    timeout: Option<Duration>,
    out: &mut Vec<Readiness>,
) -> std::io::Result<usize> {
    out.clear();
    out.resize(fds.len(), Readiness::default());
    sys::wait(fds, timeout, out)
}

/// Cross-thread wakeup for a blocked [`wait`]: a non-blocking
/// [`UnixStream`] pair used as a self-pipe. Include [`Waker::fd`] with
/// read interest in the poll set; any thread may call [`Waker::wake`]
/// to make the poller return, and the poller calls [`Waker::drain`]
/// once woken so the next wait blocks again.
#[derive(Debug)]
pub struct Waker {
    /// The write side `wake` pokes.
    tx: UnixStream,
    /// The read side the poll set watches and `drain` empties.
    rx: UnixStream,
}

impl Waker {
    /// Builds the pipe pair (both ends non-blocking).
    ///
    /// # Errors
    ///
    /// Fails when the socket pair cannot be created (fd exhaustion).
    pub fn new() -> std::io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to include (with read interest) in the poll set.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Makes a concurrent (or future) [`wait`] including [`Waker::fd`]
    /// return promptly. Callable from any thread; a full pipe means a
    /// wakeup is already pending, which is just as good.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Empties the pipe after a wakeup so the next [`wait`] blocks.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! The real thing: raw `ppoll(2)` through inline assembly.

    use super::{Interest, Readiness};
    use std::os::fd::RawFd;
    use std::time::Duration;

    // poll(2) event bits (asm-generic, stable ABI).
    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;
    /// Linux-specific: peer shut down its write side. Folded into
    /// `readable` so the caller's `read()` observes the EOF.
    const POLLRDHUP: i16 = 0x2000;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[repr(C)]
    struct TimeSpec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PPOLL: usize = 271;
    #[cfg(target_arch = "aarch64")]
    const SYS_PPOLL: usize = 73;

    /// Issues `ppoll(fds, nfds, timeout, NULL, 0)` and returns the raw
    /// (possibly negative-errno) result.
    ///
    /// # Safety
    ///
    /// `fds` must point to `nfds` valid `PollFd` entries and `timeout`
    /// must be null or point to a valid `TimeSpec`; both only for the
    /// duration of the call (the kernel retains nothing).
    // SAFETY: contract on the caller, per the `# Safety` section above.
    unsafe fn ppoll(fds: *mut PollFd, nfds: usize, timeout: *const TimeSpec) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: standard Linux x86_64 syscall ABI — number in rax,
        // args in rdi/rsi/rdx/r10/r8, kernel clobbers rcx/r11. The
        // pointer validity contract is the caller's (documented above);
        // a null sigmask with size 0 makes ppoll behave like poll.
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_PPOLL => ret,
            in("rdi") fds,
            in("rsi") nfds,
            in("rdx") timeout,
            in("r10") 0usize,
            in("r8") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        // SAFETY: standard Linux aarch64 syscall ABI — number in x8,
        // args in x0..x4. Pointer validity is the caller's contract; a
        // null sigmask with size 0 makes ppoll behave like poll.
        core::arch::asm!(
            "svc #0",
            in("x8") SYS_PPOLL,
            inlateout("x0") fds as usize => ret,
            in("x1") nfds,
            in("x2") timeout,
            in("x3") 0usize,
            in("x4") 0usize,
            options(nostack),
        );
        ret
    }

    pub(super) fn wait(
        fds: &[(RawFd, Interest)],
        timeout: Option<Duration>,
        out: &mut [Readiness],
    ) -> std::io::Result<usize> {
        let mut raw: Vec<PollFd> = fds
            .iter()
            .map(|&(fd, interest)| {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN | POLLRDHUP;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                PollFd {
                    fd,
                    events,
                    revents: 0,
                }
            })
            .collect();
        let ts = timeout.map(|t| TimeSpec {
            tv_sec: i64::try_from(t.as_secs()).unwrap_or(i64::MAX),
            tv_nsec: i64::from(t.subsec_nanos()),
        });
        let ts_ptr = ts.as_ref().map_or(std::ptr::null(), std::ptr::from_ref);
        // Both uphold the `ppoll` contract above:
        // SAFETY: `raw` is a live Vec with exactly `raw.len()` entries
        // and `ts_ptr` is null or points at `ts`, which outlives the call.
        let ret = unsafe { ppoll(raw.as_mut_ptr(), raw.len(), ts_ptr) };
        if ret < 0 {
            let errno = i32::try_from(-ret).unwrap_or(i32::MAX);
            const EINTR: i32 = 4;
            if errno == EINTR {
                return Ok(0);
            }
            return Err(std::io::Error::from_raw_os_error(errno));
        }
        let mut ready = 0usize;
        for (slot, pfd) in out.iter_mut().zip(&raw) {
            let r = pfd.revents;
            *slot = Readiness {
                readable: r & (POLLIN | POLLRDHUP) != 0,
                writable: r & POLLOUT != 0,
                hangup: r & POLLHUP != 0,
                error: r & (POLLERR | POLLNVAL) != 0,
            };
            if slot.any() {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Degraded portable fallback: no kernel readiness available
    //! without libc, so emulate by sleeping a short interval and
    //! reporting every entry both readable and writable. Level-triggered
    //! callers on non-blocking fds stay *correct* (reads/writes simply
    //! answer `WouldBlock`), they just burn more wakeups — acceptable
    //! for the non-Linux dev targets this repo does not optimise for.

    use super::{Interest, Readiness};
    use std::os::fd::RawFd;
    use std::time::Duration;

    const TICK: Duration = Duration::from_millis(5);

    pub(super) fn wait(
        fds: &[(RawFd, Interest)],
        timeout: Option<Duration>,
        out: &mut [Readiness],
    ) -> std::io::Result<usize> {
        std::thread::sleep(timeout.map_or(TICK, |t| t.min(TICK)));
        for slot in out.iter_mut() {
            *slot = Readiness {
                readable: true,
                writable: true,
                hangup: false,
                error: false,
            };
        }
        Ok(fds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Arc;

    #[test]
    fn reports_readable_only_once_bytes_arrive() {
        let (mut a, b) = UnixStream::pair().expect("pair");
        let fds = [(b.as_raw_fd(), Interest::READABLE)];
        let mut out = Vec::new();
        let n = wait(&fds, Some(Duration::ZERO), &mut out).expect("wait");
        #[cfg(target_os = "linux")]
        {
            assert_eq!(n, 0, "no bytes buffered yet");
            assert!(!out[0].any());
        }
        a.write_all(b"ping").expect("write");
        let n = wait(&fds, Some(Duration::from_secs(5)), &mut out).expect("wait");
        assert!(n >= 1);
        assert!(out[0].readable);
    }

    #[test]
    fn a_fresh_socket_is_writable_and_interest_none_is_quiet() {
        let (a, _b) = UnixStream::pair().expect("pair");
        let mut out = Vec::new();
        let n = wait(
            &[(a.as_raw_fd(), Interest::WRITABLE)],
            Some(Duration::from_secs(5)),
            &mut out,
        )
        .expect("wait");
        assert!(n >= 1);
        assert!(out[0].writable);
        #[cfg(target_os = "linux")]
        {
            let n = wait(
                &[(a.as_raw_fd(), Interest::NONE)],
                Some(Duration::ZERO),
                &mut out,
            )
            .expect("wait");
            assert_eq!(n, 0, "empty interest on a healthy fd reports nothing");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn hangup_is_reported_even_with_empty_interest() {
        let (a, b) = UnixStream::pair().expect("pair");
        drop(a);
        let mut out = Vec::new();
        let n = wait(
            &[(b.as_raw_fd(), Interest::NONE)],
            Some(Duration::from_secs(5)),
            &mut out,
        )
        .expect("wait");
        assert_eq!(n, 1);
        assert!(out[0].hangup || out[0].error, "{:?}", out[0]);
    }

    #[test]
    fn a_waker_unblocks_a_concurrent_wait() {
        let waker = Arc::new(Waker::new().expect("waker"));
        let poker = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            poker.wake();
        });
        let mut out = Vec::new();
        let started = std::time::Instant::now();
        let n = wait(
            &[(waker.fd(), Interest::READABLE)],
            Some(Duration::from_secs(30)),
            &mut out,
        )
        .expect("wait");
        assert!(n >= 1);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "wakeup should beat the timeout by a wide margin"
        );
        waker.drain();
        handle.join().expect("join");
        // Drained: an immediate zero-timeout poll sees nothing (Linux).
        #[cfg(target_os = "linux")]
        {
            let n = wait(
                &[(waker.fd(), Interest::READABLE)],
                Some(Duration::ZERO),
                &mut out,
            )
            .expect("wait");
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn repeated_wakes_coalesce_without_blocking_the_waker() {
        let waker = Waker::new().expect("waker");
        // Far more wakes than the pipe buffers: `wake` must never block.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut out = Vec::new();
        let n = wait(
            &[(waker.fd(), Interest::READABLE)],
            Some(Duration::from_secs(5)),
            &mut out,
        )
        .expect("wait");
        assert!(n >= 1);
        waker.drain();
    }
}
