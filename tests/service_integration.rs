//! Service-layer integration: boot `hattd` (the library server the
//! binary wraps) on an ephemeral port, map the Table I roster over the
//! socket, and assert every streamed response is **bit-identical** to
//! the in-process `Mapper` result. Also pins the typed-error paths: a
//! malformed line, a zero-mode item and a mode-pin violation each come
//! back as error lines without wedging the connection or the batch.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use hatt::core::{HattOptions, Mapper};
use hatt::fermion::models::{molecule_catalog, NeutrinoModel};
use hatt::fermion::MajoranaSum;
use hatt::mappings::{validate, FermionMapping, SelectionPolicy};
use hatt::service::{client, MapRequest, ResponseLine, Server, ServerConfig};

fn preprocess(h: &hatt::fermion::FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(h);
    let _ = m.take_identity();
    m.prune(1e-10);
    m
}

/// The Table I roster: every catalog molecule (4–30 modes) plus two
/// neutrino models.
fn roster() -> Vec<(String, MajoranaSum)> {
    let mut cases: Vec<(String, MajoranaSum)> = molecule_catalog()
        .into_iter()
        .map(|spec| (spec.name.to_string(), preprocess(&spec.hamiltonian())))
        .collect();
    for (s, f) in [(3usize, 2usize), (4, 2)] {
        let model = NeutrinoModel::new(s, f);
        cases.push((
            format!("neutrino {}", model.label()),
            preprocess(&model.hamiltonian()),
        ));
    }
    cases
}

fn boot(mapper: Mapper) -> Server {
    Server::bind("127.0.0.1:0", mapper, ServerConfig::default()).expect("bind ephemeral port")
}

#[test]
fn table1_roster_over_tcp_is_bit_identical_to_in_process() {
    let server = boot(Mapper::new());
    let cases = roster();
    let hams: Vec<MajoranaSum> = cases.iter().map(|(_, h)| h.clone()).collect();

    let req = MapRequest::new("table1", hams.clone());
    let reply = client::request(server.local_addr(), &req).expect("socket round trip");
    assert_eq!(reply.done.items, hams.len());
    assert_eq!(reply.done.errors, 0);
    let items = reply.into_ordered();

    // The reference mapper runs the identical configuration in-process.
    let reference = Mapper::new();
    for (i, ((name, h), item)) in cases.iter().zip(&items).enumerate() {
        assert_eq!(item.index, Some(i), "{name}: stream index");
        let remote = item.mapping().unwrap_or_else(|| {
            panic!("{name}: error item {:?}", item.error());
        });
        let local = reference.map(h).expect("roster maps");
        assert_eq!(remote.tree(), local.tree(), "{name}: tree drifted over TCP");
        assert_eq!(
            remote.stats().total_weight(),
            local.stats().total_weight(),
            "{name}: settled weight drifted"
        );
        assert_eq!(
            remote.map_majorana_sum(h).weight(),
            local.map_majorana_sum(h).weight(),
            "{name}: mapped weight drifted"
        );
        let report = validate(remote);
        assert!(report.is_valid(), "{name}: invalid over the wire");
    }
    server.shutdown();
}

#[test]
fn responses_stream_one_line_per_item() {
    let server = boot(Mapper::new());
    let hams: Vec<MajoranaSum> = (2..7).map(MajoranaSum::uniform_singles).collect();
    let req = MapRequest::new("stream", hams.clone());

    // Raw socket: count the lines ourselves.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");
    writer.flush().expect("flush");
    let reader = BufReader::new(stream);
    let mut item_lines = 0usize;
    let mut done = false;
    for line in reader.lines() {
        let line = line.expect("read line");
        match ResponseLine::from_line(&line).expect("parse response") {
            ResponseLine::Item(item) => {
                assert!(item.is_ok());
                item_lines += 1;
            }
            ResponseLine::Done(d) => {
                assert_eq!(d.items, hams.len());
                done = true;
                break;
            }
        }
    }
    assert!(done, "missing map_done line");
    assert_eq!(item_lines, hams.len(), "one line per batch item");
    server.shutdown();
}

#[test]
fn request_options_override_the_server_default() {
    let server = boot(Mapper::new()); // greedy default
    let mut h = MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian());
    let _ = h.take_identity();

    let mut req = MapRequest::new("quality", vec![h.clone()]);
    req.options = Some(HattOptions::with_policy(SelectionPolicy::Restarts));
    let items = client::request(server.local_addr(), &req)
        .expect("round trip")
        .into_ordered();
    let remote = items[0].mapping().expect("ok item");

    let local = Mapper::builder()
        .policy(SelectionPolicy::Restarts)
        .build()
        .unwrap()
        .map(&h)
        .unwrap();
    assert_eq!(remote.tree(), local.tree(), "per-request policy honoured");
    server.shutdown();
}

#[test]
fn malformed_and_invalid_inputs_come_back_as_typed_error_lines() {
    let server = boot(Mapper::new());
    let addr = server.local_addr();

    // 1. Garbage line → invalid_request item + done; connection stays up.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"this is not a request\n").expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("error line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => {
            assert!(!item.is_ok());
            assert_eq!(item.index, None);
            assert_eq!(item.error().unwrap().code, "invalid_request");
        }
        other => panic!("{other:?}"),
    }
    line.clear();
    reader.read_line(&mut line).expect("done line");
    assert!(matches!(
        ResponseLine::from_line(&line).expect("parse"),
        ResponseLine::Done(_)
    ));

    // 2. Same connection, now a valid request: still served.
    let req = MapRequest::new("after-error", vec![MajoranaSum::uniform_singles(2)]);
    writer
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send valid");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("item line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => assert!(item.is_ok(), "connection wedged after error"),
        other => panic!("{other:?}"),
    }

    // 3. Zero-mode and mode-pinned items fail individually via the
    //    client helper; valid siblings still map.
    let mut req = MapRequest::new(
        "mixed",
        vec![
            MajoranaSum::uniform_singles(3),
            MajoranaSum::new(0),
            MajoranaSum::uniform_singles(2),
        ],
    );
    let items = client::request(addr, &req)
        .expect("round trip")
        .into_ordered();
    assert!(items[0].is_ok());
    assert_eq!(items[1].error().unwrap().code, "empty_hamiltonian");
    assert!(items[2].is_ok());

    req.id = "pinned".into();
    req.n_modes = Some(3);
    let items = client::request(addr, &req)
        .expect("round trip")
        .into_ordered();
    assert!(items[0].is_ok());
    assert_eq!(items[1].error().unwrap().code, "mode_mismatch");
    assert_eq!(items[2].error().unwrap().code, "mode_mismatch");
    server.shutdown();
}

#[test]
fn repeated_structures_cache_hit_across_the_socket() {
    let server = boot(Mapper::new());
    let mut h = MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian());
    let _ = h.take_identity();
    // A coefficient sweep: one structure, five instances.
    let sweep: Vec<MajoranaSum> = (0..5).map(|k| h.scaled(1.0 + 0.25 * k as f64)).collect();
    let req = MapRequest::new("sweep", sweep.clone());
    let items = client::request(server.local_addr(), &req)
        .expect("round trip")
        .into_ordered();
    let reference = Mapper::new();
    let base_tree = reference.map(&h).unwrap();
    for (k, item) in items.iter().enumerate() {
        let m = item.mapping().expect("ok item");
        assert_eq!(m.tree(), base_tree.tree(), "instance {k}");
        // Exact per-instance stats despite the shared structure.
        assert_eq!(
            m.stats().total_weight(),
            reference.map(&sweep[k]).unwrap().stats().total_weight(),
            "instance {k} stats"
        );
    }
    server.shutdown();
}
