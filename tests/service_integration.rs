//! Service-layer integration: boot `hattd` (the library server the
//! binary wraps) on an ephemeral port, map the Table I roster over the
//! socket, and assert every streamed response is **bit-identical** to
//! the in-process `Mapper` result. Also pins the typed-error paths: a
//! malformed line, a zero-mode item and a mode-pin violation each come
//! back as error lines without wedging the connection or the batch.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hatt::core::{HattOptions, Mapper};
use hatt::fermion::models::{molecule_catalog, NeutrinoModel};
use hatt::fermion::{HamiltonianDelta, MajoranaSum};
use hatt::mappings::{validate, FermionMapping, SelectionPolicy};
use hatt::pauli::Complex64;
use hatt::service::{
    client, MapDeltaRequest, MapRequest, ResponseLine, SchedulerConfig, Server, ServerConfig,
};

fn preprocess(h: &hatt::fermion::FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(h);
    let _ = m.take_identity();
    m.prune(1e-10);
    m
}

/// The Table I roster: every catalog molecule (4–30 modes) plus two
/// neutrino models.
fn roster() -> Vec<(String, MajoranaSum)> {
    let mut cases: Vec<(String, MajoranaSum)> = molecule_catalog()
        .into_iter()
        .map(|spec| (spec.name.to_string(), preprocess(&spec.hamiltonian())))
        .collect();
    for (s, f) in [(3usize, 2usize), (4, 2)] {
        let model = NeutrinoModel::new(s, f);
        cases.push((
            format!("neutrino {}", model.label()),
            preprocess(&model.hamiltonian()),
        ));
    }
    cases
}

fn boot(mapper: Mapper) -> Server {
    Server::bind("127.0.0.1:0", mapper, ServerConfig::default()).expect("bind ephemeral port")
}

#[test]
fn table1_roster_over_tcp_is_bit_identical_to_in_process() {
    let server = boot(Mapper::new());
    let cases = roster();
    let hams: Vec<MajoranaSum> = cases.iter().map(|(_, h)| h.clone()).collect();

    let req = MapRequest::new("table1", hams.clone());
    let reply = client::request(server.local_addr(), &req).expect("socket round trip");
    assert_eq!(reply.done.items, hams.len());
    assert_eq!(reply.done.errors, 0);
    let items = reply.into_ordered();

    // The reference mapper runs the identical configuration in-process.
    let reference = Mapper::new();
    for (i, ((name, h), item)) in cases.iter().zip(&items).enumerate() {
        assert_eq!(item.index, Some(i), "{name}: stream index");
        let remote = item.mapping().unwrap_or_else(|| {
            panic!("{name}: error item {:?}", item.error());
        });
        let local = reference.map(h).expect("roster maps");
        assert_eq!(remote.tree(), local.tree(), "{name}: tree drifted over TCP");
        assert_eq!(
            remote.stats().total_weight(),
            local.stats().total_weight(),
            "{name}: settled weight drifted"
        );
        assert_eq!(
            remote.map_majorana_sum(h).weight(),
            local.map_majorana_sum(h).weight(),
            "{name}: mapped weight drifted"
        );
        let report = validate(remote);
        assert!(report.is_valid(), "{name}: invalid over the wire");
    }
    server.shutdown();
}

#[test]
fn responses_stream_one_line_per_item() {
    let server = boot(Mapper::new());
    let hams: Vec<MajoranaSum> = (2..7).map(MajoranaSum::uniform_singles).collect();
    let req = MapRequest::new("stream", hams.clone());

    // Raw socket: count the lines ourselves.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");
    writer.flush().expect("flush");
    let reader = BufReader::new(stream);
    let mut item_lines = 0usize;
    let mut done = false;
    for line in reader.lines() {
        let line = line.expect("read line");
        match ResponseLine::from_line(&line).expect("parse response") {
            ResponseLine::Item(item) => {
                assert!(item.is_ok());
                item_lines += 1;
            }
            ResponseLine::Done(d) => {
                assert_eq!(d.items, hams.len());
                done = true;
                break;
            }
        }
    }
    assert!(done, "missing map_done line");
    assert_eq!(item_lines, hams.len(), "one line per batch item");
    server.shutdown();
}

#[test]
fn request_options_override_the_server_default() {
    let server = boot(Mapper::new()); // greedy default
    let mut h = MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian());
    let _ = h.take_identity();

    let mut req = MapRequest::new("quality", vec![h.clone()]);
    req.options = Some(HattOptions::with_policy(SelectionPolicy::Restarts));
    let items = client::request(server.local_addr(), &req)
        .expect("round trip")
        .into_ordered();
    let remote = items[0].mapping().expect("ok item");

    let local = Mapper::builder()
        .policy(SelectionPolicy::Restarts)
        .build()
        .unwrap()
        .map(&h)
        .unwrap();
    assert_eq!(remote.tree(), local.tree(), "per-request policy honoured");
    server.shutdown();
}

#[test]
fn malformed_and_invalid_inputs_come_back_as_typed_error_lines() {
    let server = boot(Mapper::new());
    let addr = server.local_addr();

    // 1. Garbage line → invalid_request item + done; connection stays up.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"this is not a request\n").expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("error line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => {
            assert!(!item.is_ok());
            assert_eq!(item.index, None);
            assert_eq!(item.error().unwrap().code, "invalid_request");
        }
        other => panic!("{other:?}"),
    }
    line.clear();
    reader.read_line(&mut line).expect("done line");
    assert!(matches!(
        ResponseLine::from_line(&line).expect("parse"),
        ResponseLine::Done(_)
    ));

    // 2. Same connection, now a valid request: still served.
    let req = MapRequest::new("after-error", vec![MajoranaSum::uniform_singles(2)]);
    writer
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send valid");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("item line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => assert!(item.is_ok(), "connection wedged after error"),
        other => panic!("{other:?}"),
    }

    // 3. Zero-mode and mode-pinned items fail individually via the
    //    client helper; valid siblings still map.
    let mut req = MapRequest::new(
        "mixed",
        vec![
            MajoranaSum::uniform_singles(3),
            MajoranaSum::new(0),
            MajoranaSum::uniform_singles(2),
        ],
    );
    let items = client::request(addr, &req)
        .expect("round trip")
        .into_ordered();
    assert!(items[0].is_ok());
    assert_eq!(items[1].error().unwrap().code, "empty_hamiltonian");
    assert!(items[2].is_ok());

    req.id = "pinned".into();
    req.n_modes = Some(3);
    let items = client::request(addr, &req)
        .expect("round trip")
        .into_ordered();
    assert!(items[0].is_ok());
    assert_eq!(items[1].error().unwrap().code, "mode_mismatch");
    assert_eq!(items[2].error().unwrap().code, "mode_mismatch");
    server.shutdown();
}

#[test]
fn repeated_structures_cache_hit_across_the_socket() {
    let server = boot(Mapper::new());
    let mut h = MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian());
    let _ = h.take_identity();
    // A coefficient sweep: one structure, five instances.
    let sweep: Vec<MajoranaSum> = (0..5).map(|k| h.scaled(1.0 + 0.25 * k as f64)).collect();
    let req = MapRequest::new("sweep", sweep.clone());
    let items = client::request(server.local_addr(), &req)
        .expect("round trip")
        .into_ordered();
    let reference = Mapper::new();
    let base_tree = reference.map(&h).unwrap();
    for (k, item) in items.iter().enumerate() {
        let m = item.mapping().expect("ok item");
        assert_eq!(m.tree(), base_tree.tree(), "instance {k}");
        // Exact per-instance stats despite the shared structure.
        assert_eq!(
            m.stats().total_weight(),
            reference.map(&sweep[k]).unwrap().stats().total_weight(),
            "instance {k} stats"
        );
    }
    server.shutdown();
}

#[test]
fn oversize_lines_get_a_typed_error_and_the_connection_survives() {
    let config = ServerConfig {
        max_line_bytes: 1024,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // A 64 KiB line: far over the 1 KiB cap. The server must discard it
    // as it streams (never buffering it) and answer with a typed error.
    let mut junk = vec![b'x'; 64 * 1024];
    junk.push(b'\n');
    writer.write_all(&junk).expect("send oversize line");
    writer.flush().expect("flush");

    let mut line = String::new();
    reader.read_line(&mut line).expect("error line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => {
            let err = item.error().expect("typed error");
            assert_eq!(err.code, "invalid_request");
            assert!(
                err.message.contains("1024"),
                "message should name the limit: {}",
                err.message
            );
        }
        other => panic!("{other:?}"),
    }
    line.clear();
    reader.read_line(&mut line).expect("done line");
    assert!(matches!(
        ResponseLine::from_line(&line).expect("parse"),
        ResponseLine::Done(_)
    ));

    // The connection is still usable for a (small) valid request.
    let req = MapRequest::new("after-oversize", vec![MajoranaSum::uniform_singles(2)]);
    writer
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send valid");
    writer.flush().expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("item line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => assert!(item.is_ok(), "connection wedged after oversize"),
        other => panic!("{other:?}"),
    }

    // The incident is counted.
    let stats = client::stats(server.local_addr(), "probe").expect("stats");
    assert_eq!(stats.oversize_lines, 1);
    server.shutdown();
}

#[test]
fn a_client_disconnecting_mid_stream_does_not_wedge_the_server() {
    let server = boot(Mapper::new());
    let addr = server.local_addr();

    // Send a multi-item request, read a single response line, hang up.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let hams: Vec<MajoranaSum> = (2..8).map(MajoranaSum::uniform_singles).collect();
        let req = MapRequest::new("walkout", hams);
        writer
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("first item");
        // Drop both halves: the handler's remaining writes fail and the
        // handler must exit instead of wedging a slot forever.
    }

    // The server still serves fresh connections.
    let req = MapRequest::new("aftermath", vec![MajoranaSum::uniform_singles(3)]);
    let reply = client::request(addr, &req).expect("server survived the walkout");
    assert_eq!(reply.done.errors, 0);
    server.shutdown();
}

#[test]
fn connections_beyond_the_cap_get_a_typed_overloaded_line() {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Occupy both slots with connections whose handlers are provably
    // live (each completed a round trip, so its slot is claimed).
    let occupy = |id: &str| {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let req = MapRequest::new(id, vec![MajoranaSum::uniform_singles(2)]);
        writer
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).expect("line");
            if matches!(
                ResponseLine::from_line(&line).expect("parse"),
                ResponseLine::Done(_)
            ) {
                break;
            }
        }
        (reader, writer)
    };
    let _a = occupy("slot-a");
    let _b = occupy("slot-b");

    // The third connection is rejected with one typed line and closed.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("overloaded line");
    match ResponseLine::from_line(&line).expect("parse") {
        ResponseLine::Item(item) => {
            assert_eq!(item.error().expect("typed error").code, "overloaded");
        }
        other => panic!("{other:?}"),
    }
    line.clear();
    reader.read_line(&mut line).expect("done line");
    assert!(matches!(
        ResponseLine::from_line(&line).expect("parse"),
        ResponseLine::Done(_)
    ));
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0, "closed");

    // Freeing a slot readmits new connections.
    drop(_a);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let req = MapRequest::new("readmitted", vec![MajoranaSum::uniform_singles(2)]);
        match client::request(addr, &req) {
            Ok(reply)
                if reply
                    .items
                    .iter()
                    .any(|i| i.error().is_some_and(|e| e.code == "overloaded")) =>
            {
                // Still at the cap: the rejection itself is a well-formed
                // reply (one `overloaded` item + done), not a transport
                // error. The freed slot releases when the old handler
                // notices the hangup on its next poll tick; retry briefly.
                if std::time::Instant::now() >= deadline {
                    panic!("slot never freed: still overloaded at deadline");
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Ok(reply) => {
                assert_eq!(reply.done.errors, 0);
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                // The freed slot releases when the handler notices the
                // hangup on its next poll tick; retry briefly.
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn map_delta_over_tcp_matches_a_fresh_build_and_counts_a_remap() {
    let server = boot(Mapper::new());
    let addr = server.local_addr();
    let base = preprocess(&NeutrinoModel::new(3, 2).hamiltonian());

    // Warm the daemon's cache with the base structure.
    let warm = client::request(addr, &MapRequest::new("warm", vec![base.clone()]))
        .expect("warm round trip");
    assert_eq!(warm.done.errors, 0);

    // Remap a one-term structural edit of the base incrementally.
    let mut delta = HamiltonianDelta::new(base.n_modes());
    delta
        .push_add(Complex64::real(0.125), &[0, 1, 2, 3])
        .expect("delta term");
    let req = MapDeltaRequest::new("edit-1", base.clone(), delta.clone());
    let reply = client::remap(addr, &req).expect("map_delta round trip");
    assert_eq!(reply.done.items, 1);
    assert_eq!(reply.done.errors, 0);
    let remote = reply.items[0].mapping().expect("ok item");

    // Bit-identical to a fresh in-process build of the post-delta
    // Hamiltonian.
    let next = delta.apply(&base).expect("delta applies");
    let local = Mapper::new().map(&next).expect("fresh build");
    assert_eq!(remote.tree(), local.tree(), "remap tree drifted over TCP");
    assert_eq!(
        remote.stats().total_weight(),
        local.stats().total_weight(),
        "remap settled weight drifted"
    );
    assert_eq!(
        remote.map_majorana_sum(&next).weight(),
        local.map_majorana_sum(&next).weight(),
        "remap compile weight drifted"
    );
    assert!(validate(remote).is_valid());

    // The daemon served the edit from the ancestor tree: one remap,
    // and still only the single (base) cold construction.
    let stats = client::stats(addr, "probe").expect("stats");
    assert_eq!(stats.remaps, 1, "expected the incremental fast path");
    assert_eq!(stats.constructions, 1, "the edit must not construct cold");

    // A delta that does not apply comes back as a typed error item.
    let mut bogus = HamiltonianDelta::new(base.n_modes());
    bogus
        .push_remove(Complex64::real(999.0), &[0, 1, 2, 3])
        .expect("delta term");
    let reply = client::remap(addr, &MapDeltaRequest::new("bad", base, bogus))
        .expect("typed error round trip");
    assert_eq!(reply.done.errors, 1);
    assert_eq!(reply.items[0].error().expect("error item").code, "delta");
    server.shutdown();
}

#[test]
fn a_small_client_is_not_starved_behind_a_chatty_one() {
    // One worker makes dispatch fully sequential: each round-robin round
    // takes at most two jobs, so client B's lone job must ride an early
    // round instead of waiting out client A's entire backlog.
    let config = ServerConfig {
        scheduler: SchedulerConfig {
            workers: 1,
            queue_capacity: 256,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Client A: a 32-item batch of distinct structures (no cache hits).
    let a_hams: Vec<MajoranaSum> = (4..36).map(MajoranaSum::uniform_singles).collect();
    let a_total = a_hams.len();
    let a_seen = Arc::new(AtomicUsize::new(0));
    let a_thread = {
        let a_seen = Arc::clone(&a_seen);
        std::thread::spawn(move || {
            client::request_streaming(addr, &MapRequest::new("chatty", a_hams), |_| {
                a_seen.fetch_add(1, Ordering::SeqCst);
            })
        })
    };

    // Wait until A's batch is demonstrably in flight…
    while a_seen.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // …then submit B's single-item request on a second connection.
    let req = MapRequest::new("small", vec![MajoranaSum::uniform_singles(3)]);
    let reply = client::request(addr, &req).expect("small client round trip");
    assert_eq!(reply.done.errors, 0);
    let a_done_when_b_finished = a_seen.load(Ordering::SeqCst);

    let a_reply = a_thread
        .join()
        .expect("client thread")
        .expect("chatty client round trip");
    assert_eq!(a_reply.done.items, a_total);
    assert!(
        a_done_when_b_finished < a_total,
        "round-robin drain should answer the small client while the \
         chatty batch is still streaming (saw {a_done_when_b_finished}/{a_total})"
    );
    server.shutdown();
}

#[test]
fn the_stats_verb_reports_tiers_queue_depth_and_latency_histograms() {
    let server = boot(Mapper::new());
    let addr = server.local_addr();
    let hams: Vec<MajoranaSum> = (2..5).map(MajoranaSum::uniform_singles).collect();
    let n = hams.len();
    let req = MapRequest::new("warmup", hams);
    client::request(addr, &req).expect("round trip");

    let stats = client::stats(addr, "schema-probe").expect("stats");
    assert_eq!(stats.id, "schema-probe");
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.constructions, n as u64);
    assert_eq!(stats.cache.entries, n);
    assert_eq!(stats.cache.misses, n as u64);
    assert_eq!(
        stats.connection_limit,
        ServerConfig::default().max_connections
    );
    assert!(stats.store.is_none(), "no --store configured");
    assert_eq!(stats.queue_depth, 0, "all work drained");

    // One policy histogram (the default policy), internally consistent:
    // finite buckets ascend, the overflow bucket closes the list, and
    // the bucket counts sum to the observation count.
    assert_eq!(stats.policies.len(), 1);
    let p = &stats.policies[0];
    assert_eq!(p.count, n as u64);
    assert!(p.total_ns > 0);
    let bounds: Vec<_> = p.buckets.iter().map(|b| b.le_ns).collect();
    assert!(bounds.windows(2).all(|w| w[0] < w[1] || w[1].is_none()));
    assert_eq!(*bounds.last().expect("buckets"), None, "overflow bucket");
    assert_eq!(
        p.buckets.iter().map(|b| b.count).sum::<u64>(),
        p.count,
        "bucket counts must sum to the total"
    );
    server.shutdown();
}

#[test]
fn router_sharded_roster_is_bit_identical_to_a_single_mapper() {
    // Two independent shard daemons plus a router in front: the Table I
    // roster mapped through the consistent-hash fan-out must be
    // bit-identical to the single in-process reference mapper.
    let shard_a = boot(Mapper::new());
    let shard_b = boot(Mapper::new());
    let shard_addrs = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Server::bind_router("127.0.0.1:0", &shard_addrs, ServerConfig::default())
        .expect("bind router");
    let addr = router.local_addr();

    let cases = roster();
    let hams: Vec<MajoranaSum> = cases.iter().map(|(_, h)| h.clone()).collect();
    let reply = client::request(addr, &MapRequest::new("routed-table1", hams.clone()))
        .expect("routed round trip");
    assert_eq!(reply.done.items, hams.len());
    assert_eq!(reply.done.errors, 0);
    let items = reply.into_ordered();

    let reference = Mapper::new();
    for (i, ((name, h), item)) in cases.iter().zip(&items).enumerate() {
        assert_eq!(item.index, Some(i), "{name}: stream index");
        let remote = item.mapping().unwrap_or_else(|| {
            panic!("{name}: error item {:?}", item.error());
        });
        let local = reference.map(h).expect("roster maps");
        assert_eq!(
            remote.tree(),
            local.tree(),
            "{name}: tree drifted through the router"
        );
        assert_eq!(
            remote.map_majorana_sum(h).weight(),
            local.map_majorana_sum(h).weight(),
            "{name}: mapped weight drifted through the router"
        );
        assert!(validate(remote).is_valid(), "{name}: invalid via router");
    }

    // A map_delta routed whole to the shard owning its base structure
    // matches a fresh in-process build as well. (A singles-only base, so
    // the added quartic term is genuinely new.)
    let base = MajoranaSum::uniform_singles(4);
    let mut delta = HamiltonianDelta::new(base.n_modes());
    delta
        .push_add(Complex64::real(0.125), &[0, 1, 2, 3])
        .expect("delta term");
    let reply = client::remap(
        addr,
        &MapDeltaRequest::new("routed-edit", base.clone(), delta.clone()),
    )
    .expect("routed remap");
    assert_eq!(
        reply.done.errors, 0,
        "routed remap error: {:?}",
        reply.items
    );
    let next = delta.apply(&base).expect("delta applies");
    let local = Mapper::new().map(&next).expect("fresh build");
    assert_eq!(
        reply.items[0].mapping().expect("ok item").tree(),
        local.tree(),
        "routed remap tree drifted"
    );

    // The router's stats expose both shards as healthy and account for
    // every item it forwarded (roster + the one delta).
    let stats = client::stats(addr, "router-probe").expect("router stats");
    assert_eq!(stats.shards.len(), 2);
    assert!(stats.shards.iter().all(|s| s.healthy), "{:?}", stats.shards);
    let forwarded: u64 = stats.shards.iter().map(|s| s.forwarded).sum();
    assert_eq!(forwarded, hams.len() as u64 + 1);

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn a_slow_reader_does_not_stall_other_connections() {
    // A slowloris-style client requests a large response and refuses to
    // read it: the kernel socket buffer fills, then the server-side
    // write buffer holds the rest. No thread blocks on that socket, so
    // other connections keep getting answers.
    let config = ServerConfig {
        max_write_buffer: 64 * 1024,
        scheduler: SchedulerConfig {
            workers: 1,
            queue_capacity: 1024,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Conn A: one construction plus 299 cache hits — a response far
    // larger than the kernel's socket buffer — left entirely unread.
    let a_stream = TcpStream::connect(addr).expect("connect slow reader");
    let mut a_writer = a_stream.try_clone().expect("clone");
    let a_hams: Vec<MajoranaSum> = (0..300).map(|_| MajoranaSum::uniform_singles(12)).collect();
    let a_total = a_hams.len();
    a_writer
        .write_all(format!("{}\n", MapRequest::new("slow", a_hams).to_line()).as_bytes())
        .expect("send slow request");
    a_writer.flush().expect("flush");

    // While A sits unread, a fast client's round trips complete.
    for k in 0..5 {
        let start = Instant::now();
        let req = MapRequest::new(format!("fast-{k}"), vec![MajoranaSum::uniform_singles(3)]);
        let reply = client::request(addr, &req).expect("fast client round trip");
        assert_eq!(reply.done.errors, 0);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "fast client stalled behind the slow reader"
        );
    }

    // Drain A slowloris-style first — a few single bytes with pauses —
    // then fully: the stream must still be complete and well-formed.
    let mut a_reader = BufReader::new(a_stream);
    let mut prefix = Vec::new();
    let mut byte = [0u8; 1];
    for _ in 0..5 {
        a_reader.read_exact(&mut byte).expect("slow byte");
        prefix.push(byte[0]);
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut rest = String::new();
    a_reader.read_line(&mut rest).expect("rest of first line");
    let first_line = format!("{}{rest}", String::from_utf8_lossy(&prefix));
    let mut seen = 0usize;
    let mut done = None;
    let mut pending = Some(first_line);
    let mut line = String::new();
    while done.is_none() {
        let next = match pending.take() {
            Some(first) => first,
            None => {
                line.clear();
                assert!(
                    a_reader.read_line(&mut line).expect("drain line") > 0,
                    "connection closed before map_done"
                );
                line.clone()
            }
        };
        match ResponseLine::from_line(next.trim_end()).expect("parse") {
            ResponseLine::Item(item) => {
                assert!(item.is_ok(), "{:?}", item.error());
                seen += 1;
            }
            ResponseLine::Done(d) => done = Some(d),
        }
    }
    assert_eq!(seen, a_total, "slow reader lost items");
    let done = done.expect("done line");
    assert_eq!(done.items, a_total);
    assert_eq!(done.errors, 0);
    server.shutdown();
}

#[test]
fn idle_connections_cost_near_zero_wakeups() {
    // 100 idle connections must not spin the event loop: the old
    // thread-per-connection server re-armed a 100 ms read timeout per
    // connection (~2000 syscalls over this window); the readiness loop
    // should wake only for the two stats probes themselves.
    let server = boot(Mapper::new());
    let addr = server.local_addr();

    let idle: Vec<TcpStream> = (0..100)
        .map(|_| TcpStream::connect(addr).expect("connect idle"))
        .collect();
    // Let every connection get adopted and settle.
    std::thread::sleep(Duration::from_millis(300));

    let w1 = client::stats(addr, "idle-1")
        .expect("stats")
        .event_loop_wakeups;
    std::thread::sleep(Duration::from_secs(2));
    let w2 = client::stats(addr, "idle-2")
        .expect("stats")
        .event_loop_wakeups;
    assert!(w2 >= w1);
    assert!(
        w2 - w1 <= 20,
        "idle connections churned the event loop: {} wakeups in 2s",
        w2 - w1
    );
    drop(idle);
    server.shutdown();
}

#[test]
fn a_thousand_item_batch_arrives_complete_with_coalesced_writes() {
    // One batch big enough that per-line flushing would dominate: every
    // item line must arrive exactly once, closed by a consistent
    // map_done. (Write coalescing batches the lines per readiness
    // cycle; completeness and framing are the observable contract.)
    let config = ServerConfig {
        scheduler: SchedulerConfig {
            workers: SchedulerConfig::default().workers,
            queue_capacity: 2048,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let addr = server.local_addr();

    let n = 1000usize;
    let hams: Vec<MajoranaSum> = (0..n).map(|_| MajoranaSum::uniform_singles(3)).collect();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{}\n", MapRequest::new("big-batch", hams).to_line()).as_bytes())
        .expect("send");
    writer.flush().expect("flush");

    let reader = BufReader::new(stream);
    let mut index_seen = vec![false; n];
    let mut items = 0usize;
    let mut done = None;
    for line in reader.lines() {
        let line = line.expect("read line");
        match ResponseLine::from_line(&line).expect("parse") {
            ResponseLine::Item(item) => {
                assert!(done.is_none(), "item line after map_done");
                assert!(item.is_ok(), "{:?}", item.error());
                let idx = item.index.expect("indexed item");
                assert!(!index_seen[idx], "index {idx} delivered twice");
                index_seen[idx] = true;
                items += 1;
            }
            ResponseLine::Done(d) => {
                done = Some(d);
                break;
            }
        }
    }
    let done = done.expect("missing map_done");
    assert_eq!(items, n, "batch arrived incomplete");
    assert!(index_seen.iter().all(|&s| s), "an index never arrived");
    assert_eq!(done.items, n);
    assert_eq!(done.errors, 0);
    server.shutdown();
}

#[test]
fn disconnecting_mid_batch_cancels_queued_work() {
    // A client that walks out mid-batch must not keep the scheduler
    // grinding through its queue: the remaining items are cancelled,
    // counted in stats, and the server stays serviceable.
    let config = ServerConfig {
        scheduler: SchedulerConfig {
            workers: 1,
            queue_capacity: 1024,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let addr = server.local_addr();

    {
        // 32 distinct constructions through a single worker: after the
        // first item streams back, most of the batch is still queued.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let hams: Vec<MajoranaSum> = (10..42).map(MajoranaSum::uniform_singles).collect();
        writer
            .write_all(format!("{}\n", MapRequest::new("walkout", hams).to_line()).as_bytes())
            .expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("first item");
        assert!(matches!(
            ResponseLine::from_line(&line).expect("parse"),
            ResponseLine::Item(_)
        ));
        // Drop with response bytes unread: the peer reset tells the
        // event loop this connection is gone.
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client::stats(addr, "cancel-probe").expect("stats");
        if stats.cancelled_items > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no queued item was cancelled after the disconnect"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Other connections were never corrupted; fresh work still lands.
    let reply = client::request(
        addr,
        &MapRequest::new("after", vec![MajoranaSum::uniform_singles(3)]),
    )
    .expect("served after cancellation");
    assert_eq!(reply.done.errors, 0);
    server.shutdown();
}

#[test]
fn an_open_loop_burst_over_the_cap_sheds_typed_overloaded_and_recovers() {
    // An open-loop burst of 12 simultaneous connections against a
    // 4-connection cap: every client gets a well-formed terminal reply —
    // either its mapping or a typed `overloaded` line — and the server
    // serves normally once the burst passes.
    let config = ServerConfig {
        max_connections: 4,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..12)
        .map(|k| {
            std::thread::spawn(move || {
                let req =
                    MapRequest::new(format!("burst-{k}"), vec![MajoranaSum::uniform_singles(2)]);
                client::request(addr, &req)
            })
        })
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for handle in handles {
        match handle.join().expect("burst thread") {
            Ok(reply)
                if reply
                    .items
                    .iter()
                    .any(|i| i.error().is_some_and(|e| e.code == "overloaded")) =>
            {
                shed += 1;
            }
            Ok(reply) => {
                assert_eq!(reply.done.errors, 0);
                served += 1;
            }
            Err(e) => panic!("burst client got a transport error instead of a typed reply: {e}"),
        }
    }
    assert_eq!(served + shed, 12);
    assert!(served >= 1, "the burst starved every client");

    // After the burst the cap has slots again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let req = MapRequest::new("after-burst", vec![MajoranaSum::uniform_singles(3)]);
        match client::request(addr, &req) {
            Ok(reply)
                if reply
                    .items
                    .iter()
                    .any(|i| i.error().is_some_and(|e| e.code == "overloaded")) =>
            {
                assert!(Instant::now() < deadline, "cap never released after burst");
                std::thread::sleep(Duration::from_millis(50));
            }
            Ok(reply) => {
                assert_eq!(reply.done.errors, 0);
                break;
            }
            Err(e) => panic!("server unserviceable after burst: {e}"),
        }
    }
    server.shutdown();
}
