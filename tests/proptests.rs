//! Workspace-level property tests: mapping validity invariants,
//! cross-mapping isospectrality on randomly generated fermionic
//! Hamiltonians, and fuzz-style totality checks on the JSON parser and
//! every `hatt-wire/1` decoder (random bytes, truncations and
//! single-byte mutations must yield typed errors, never panics).

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::core::{HattOptions, Mapper, Variant};
use hatt::fermion::models::random_hermitian;
use hatt::fermion::{HamiltonianDelta, MajoranaSum};
use hatt::mappings::{
    balanced_ternary_tree, bravyi_kitaev, jordan_wigner, parity, validate, FermionMapping,
};
use hatt::pauli::json::Json;
use hatt::pauli::{Complex64, PauliSum};
use hatt::service::{
    MapDeltaRequest, MapDone, MapRequest, RequestLine, ResponseLine, StatsRequest, TraceDumpReply,
    TraceDumpRequest, TraceSpan, TraceTree,
};
use hatt::sim::spectrum;
use proptest::prelude::*;

/// One construction through the `Mapper` handle (fresh handle per call —
/// identical results and stats to the old `hatt_with` free function).
fn hatt_with(h: &MajoranaSum, opts: &HattOptions) -> hatt::core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn constructive_mappings_are_always_valid(n in 1usize..16) {
        for m in [
            Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
            Box::new(parity(n)),
            Box::new(bravyi_kitaev(n)),
            Box::new(balanced_ternary_tree(n)),
        ] {
            let report = validate(&*m);
            prop_assert!(report.is_valid(), "{} invalid at n={n}", m.name());
            prop_assert!(report.vacuum_preserving, "{} breaks vacuum at n={n}", m.name());
        }
    }

    #[test]
    fn hatt_is_valid_on_random_hamiltonians(
        n in 3usize..8,
        one in 2usize..8,
        two in 1usize..6,
        seed in 0u64..1000,
    ) {
        let op = random_hermitian(n, one, two, seed);
        let h = MajoranaSum::from_fermion(&op);
        for variant in [Variant::Unopt, Variant::Cached] {
            let m = hatt_with(&h, &HattOptions { variant, naive_weight: false, ..Default::default() });
            let report = validate(&m);
            prop_assert!(report.is_valid(), "{variant:?} invalid: {report:?}");
            if variant == Variant::Cached {
                prop_assert!(report.vacuum_preserving, "{variant:?} broke vacuum");
            }
        }
    }

    #[test]
    fn hatt_weight_objective_matches_mapped_weight(
        n in 3usize..7,
        seed in 0u64..100,
    ) {
        let op = random_hermitian(n, 5, 3, seed);
        let mut h = MajoranaSum::from_fermion(&op);
        let _ = h.take_identity();
        let m = hatt_with(&h, &HattOptions { variant: Variant::Cached, naive_weight: false, ..Default::default() });
        let mut hq = m.map_majorana_sum(&h);
        let _ = hq.take_identity();
        // The greedy objective counts per-term weights without merging;
        // merging can only reduce the realized weight.
        prop_assert!(hq.weight() <= m.stats().total_weight());
    }

    #[test]
    fn json_parser_never_panics_on_random_bytes(bytes in proptest::collection::vec(0u8..=255, 0usize..200)) {
        let text = String::from_utf8_lossy(&bytes);
        // Totality: any byte soup parses or fails with a typed error.
        if let Ok(v) = Json::parse(&text) {
            // And anything that parsed must round-trip through render.
            prop_assert!(Json::parse(&v.render()).is_ok(), "render/reparse drifted on {:?}", text);
        }
    }

    #[test]
    fn mutated_wire_lines_decode_to_typed_errors_not_panics(
        doc in 0usize..11,
        pos in 0usize..4096,
        byte in 0u8..=255,
    ) {
        let (name, line, decode) = &wire_corpus()[doc];
        let mut bytes = line.clone().into_bytes();
        let at = pos % bytes.len();
        bytes[at] = byte;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        // Ok (the mutation was benign) and Err are both fine; only a
        // panic would fail the case.
        let _ = decode(&mutated);
        prop_assert!(!name.is_empty());
    }

    #[test]
    fn mappings_are_isospectral_on_random_hamiltonians(seed in 0u64..40) {
        let op = random_hermitian(3, 4, 2, seed);
        let h = MajoranaSum::from_fermion(&op);
        let reference = spectrum(&jordan_wigner(3).map_majorana_sum(&h));
        for m in [
            Box::new(bravyi_kitaev(3)) as Box<dyn FermionMapping>,
            Box::new(balanced_ternary_tree(3)),
            Box::new(hatt_with(&h, &HattOptions::default())),
        ] {
            let s = spectrum(&m.map_majorana_sum(&h));
            for (a, b) in reference.iter().zip(&s) {
                prop_assert!((a - b).abs() < 1e-7,
                    "{} spectrum deviates at seed {seed}", m.name());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire fuzz corpus: one valid line per `hatt-wire/1` kind, paired with
// the decoder the service layer would feed it to.
// ---------------------------------------------------------------------

type WireDecoder = fn(&str) -> Result<(), String>;

fn decode_via<T, E: std::fmt::Display>(
    text: &str,
    f: impl Fn(&Json) -> Result<T, E>,
) -> Result<(), String> {
    let v = Json::parse(text).map_err(|e| e.to_string())?;
    f(&v).map(|_| ()).map_err(|e| e.to_string())
}

/// Every wire kind in the registry with a valid rendered line and its
/// decoder. Index order is stable so proptest cases can address it.
fn wire_corpus() -> Vec<(&'static str, String, WireDecoder)> {
    let h = MajoranaSum::uniform_singles(3);
    let mapping = Mapper::new().map(&h).unwrap();
    let mut pauli = PauliSum::new(2);
    pauli.add(Complex64::new(0.5, -0.25), "XY".parse().unwrap());
    let mut delta = HamiltonianDelta::new(3);
    delta.push_add(Complex64::real(0.5), &[0, 1, 2, 3]).unwrap();

    vec![
        (
            "pauli_string",
            hatt::pauli::wire::encode_pauli_string(&"XYZI".parse().unwrap()).render(),
            (|t| decode_via(t, hatt::pauli::wire::decode_pauli_string)) as WireDecoder,
        ),
        (
            "pauli_sum",
            hatt::pauli::wire::encode_pauli_sum(&pauli).render(),
            |t| decode_via(t, hatt::pauli::wire::decode_pauli_sum),
        ),
        (
            "majorana_sum",
            hatt::fermion::wire::encode_majorana_sum(&h).render(),
            |t| decode_via(t, hatt::fermion::wire::decode_majorana_sum),
        ),
        (
            "hamiltonian_delta",
            hatt::fermion::wire::encode_hamiltonian_delta(&delta).render(),
            |t| decode_via(t, hatt::fermion::wire::decode_hamiltonian_delta),
        ),
        (
            "ternary_tree",
            hatt::mappings::wire::encode_ternary_tree(mapping.tree()).render(),
            |t| decode_via(t, hatt::mappings::wire::decode_ternary_tree),
        ),
        (
            "hatt_mapping",
            hatt::core::wire::encode_hatt_mapping(&mapping).render(),
            |t| decode_via(t, hatt::core::wire::decode_hatt_mapping),
        ),
        (
            "map_request",
            MapRequest::new("fuzz", vec![h.clone()]).to_line(),
            |t| {
                RequestLine::from_line(t)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        ),
        (
            "map_delta",
            {
                let mut d = HamiltonianDelta::new(3);
                d.push_add(Complex64::real(0.5), &[0, 1, 2, 3]).unwrap();
                MapDeltaRequest::new("fuzz", MajoranaSum::uniform_singles(3), d).to_line()
            },
            |t| {
                RequestLine::from_line(t)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        ),
        (
            "stats_request / map_done",
            StatsRequest::new("fuzz").to_line(),
            |t| {
                RequestLine::from_line(t)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        ),
        (
            "trace_dump_request",
            TraceDumpRequest::new("fuzz").with_max_traces(4).to_line(),
            |t| {
                RequestLine::from_line(t)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        ),
        (
            "trace_dump",
            TraceDumpReply {
                id: "fuzz".into(),
                enabled: true,
                traces: vec![TraceTree {
                    trace_id: 7,
                    spans: vec![TraceSpan {
                        span_id: 11,
                        parent_span: 0,
                        name: "request".into(),
                        start_ns: 100,
                        dur_ns: 250,
                    }],
                }],
            }
            .to_line(),
            |t| {
                TraceDumpReply::from_line(t)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            },
        ),
    ]
}

/// Truncation totality: **every strict prefix** of every valid wire
/// line must come back as a typed error — a dropped connection mid-line
/// can never panic a reader or silently decode to something shorter.
#[test]
fn every_strict_prefix_of_a_valid_wire_line_is_a_typed_error() {
    for (name, line, decode) in wire_corpus() {
        assert!(decode(&line).is_ok(), "{name}: the full line must decode");
        for end in 0..line.len() {
            if !line.is_char_boundary(end) {
                continue;
            }
            let prefix = &line[..end];
            assert!(
                decode(prefix).is_err(),
                "{name}: prefix of {end}/{} bytes decoded",
                line.len()
            );
        }
    }
}

/// The response-side decoders are total on truncations too.
#[test]
fn every_strict_prefix_of_a_response_line_is_a_typed_error() {
    let done = MapDone {
        id: "fuzz".into(),
        items: 2,
        errors: 1,
    };
    let line = done.to_line();
    assert!(ResponseLine::from_line(&line).is_ok());
    for end in 0..line.len() {
        assert!(
            ResponseLine::from_line(&line[..end]).is_err(),
            "map_done prefix of {end} bytes decoded"
        );
    }
}
