//! Workspace-level property tests: mapping validity invariants and
//! cross-mapping isospectrality on randomly generated fermionic
//! Hamiltonians.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::core::{HattOptions, Mapper, Variant};
use hatt::fermion::models::random_hermitian;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{
    balanced_ternary_tree, bravyi_kitaev, jordan_wigner, parity, validate, FermionMapping,
};
use hatt::sim::spectrum;
use proptest::prelude::*;

/// One construction through the `Mapper` handle (fresh handle per call —
/// identical results and stats to the old `hatt_with` free function).
fn hatt_with(h: &MajoranaSum, opts: &HattOptions) -> hatt::core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn constructive_mappings_are_always_valid(n in 1usize..16) {
        for m in [
            Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
            Box::new(parity(n)),
            Box::new(bravyi_kitaev(n)),
            Box::new(balanced_ternary_tree(n)),
        ] {
            let report = validate(&*m);
            prop_assert!(report.is_valid(), "{} invalid at n={n}", m.name());
            prop_assert!(report.vacuum_preserving, "{} breaks vacuum at n={n}", m.name());
        }
    }

    #[test]
    fn hatt_is_valid_on_random_hamiltonians(
        n in 3usize..8,
        one in 2usize..8,
        two in 1usize..6,
        seed in 0u64..1000,
    ) {
        let op = random_hermitian(n, one, two, seed);
        let h = MajoranaSum::from_fermion(&op);
        for variant in [Variant::Unopt, Variant::Cached] {
            let m = hatt_with(&h, &HattOptions { variant, naive_weight: false, ..Default::default() });
            let report = validate(&m);
            prop_assert!(report.is_valid(), "{variant:?} invalid: {report:?}");
            if variant == Variant::Cached {
                prop_assert!(report.vacuum_preserving, "{variant:?} broke vacuum");
            }
        }
    }

    #[test]
    fn hatt_weight_objective_matches_mapped_weight(
        n in 3usize..7,
        seed in 0u64..100,
    ) {
        let op = random_hermitian(n, 5, 3, seed);
        let mut h = MajoranaSum::from_fermion(&op);
        let _ = h.take_identity();
        let m = hatt_with(&h, &HattOptions { variant: Variant::Cached, naive_weight: false, ..Default::default() });
        let mut hq = m.map_majorana_sum(&h);
        let _ = hq.take_identity();
        // The greedy objective counts per-term weights without merging;
        // merging can only reduce the realized weight.
        prop_assert!(hq.weight() <= m.stats().total_weight());
    }

    #[test]
    fn mappings_are_isospectral_on_random_hamiltonians(seed in 0u64..40) {
        let op = random_hermitian(3, 4, 2, seed);
        let h = MajoranaSum::from_fermion(&op);
        let reference = spectrum(&jordan_wigner(3).map_majorana_sum(&h));
        for m in [
            Box::new(bravyi_kitaev(3)) as Box<dyn FermionMapping>,
            Box::new(balanced_ternary_tree(3)),
            Box::new(hatt_with(&h, &HattOptions::default())),
        ] {
            let s = spectrum(&m.map_majorana_sum(&h));
            for (a, b) in reference.iter().zip(&s) {
                prop_assert!((a - b).abs() < 1e-7,
                    "{} spectrum deviates at seed {seed}", m.name());
            }
        }
    }
}
