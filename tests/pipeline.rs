//! End-to-end pipeline integration tests: fermionic model → mapping →
//! Trotter circuit → optimization → simulation, with energy conservation
//! and golden-weight regression pins.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::circuit::{optimize, trotter_circuit, TermOrder};
use hatt::core::{HattOptions, Mapper, Variant};
use hatt::fermion::models::{FermiHubbard, MolecularIntegrals, NeutrinoModel};
use hatt::fermion::MajoranaSum;
use hatt::mappings::{
    balanced_ternary_tree, bravyi_kitaev, jordan_wigner, validate, FermionMapping,
};
use hatt::sim::{ground_state, StateVector};

/// One construction through the `Mapper` handle (fresh handle per call —
/// identical results and stats to the old `hatt_with` free function).
fn hatt_with(h: &MajoranaSum, opts: &HattOptions) -> hatt::core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

/// Default-options construction (the old `hatt` free function).
fn hatt(h: &MajoranaSum) -> hatt::core::HattMapping {
    hatt_with(h, &HattOptions::default())
}

#[test]
fn ideal_trotter_circuit_approximately_conserves_energy() {
    // e^{-iHt} commutes with H, so on the exact ground state the ideal
    // circuit changes the energy only by the Trotter error.
    let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
    let h = MajoranaSum::from_fermion(&op);
    let mapping = hatt(&h);
    let hq = mapping.map_majorana_sum(&h);
    let (e0, psi0) = ground_state(&hq);
    for steps in [1usize, 4] {
        let circ = optimize(&trotter_circuit(&hq, 1.0, steps, TermOrder::Lexicographic));
        let mut psi = psi0.clone();
        psi.apply_circuit(&circ);
        let e = psi.expectation(&hq);
        assert!(
            (e - e0).abs() < 0.02,
            "energy drifted from {e0} to {e} with {steps} Trotter steps"
        );
    }
}

#[test]
fn trotter_error_shrinks_with_more_steps() {
    let op = FermiHubbard::new(1, 2).hamiltonian();
    let h = MajoranaSum::from_fermion(&op);
    let mapping = jordan_wigner(4);
    let hq = mapping.map_majorana_sum(&h);
    // Reference: exact evolution via many fine steps.
    let mut reference = StateVector::zero_state(4);
    // Start from a superposition so the test is not trivial.
    let mut prep = hatt::circuit::Circuit::new(4);
    prep.h(0).cnot(0, 1).h(2);
    reference.apply_circuit(&prep);
    let start = reference.clone();
    let fine = trotter_circuit(&hq, 0.6, 64, TermOrder::Given);
    reference.apply_circuit(&fine);

    let mut err_coarse = None;
    for steps in [1usize, 8] {
        let circ = trotter_circuit(&hq, 0.6, steps, TermOrder::Given);
        let mut psi = start.clone();
        psi.apply_circuit(&circ);
        let infidelity = 1.0 - psi.fidelity(&reference);
        if let Some(prev) = err_coarse {
            assert!(
                infidelity < prev,
                "Trotter error did not shrink: {prev} → {infidelity}"
            );
        }
        err_coarse = Some(infidelity);
    }
}

#[test]
fn hatt_is_valid_and_vacuum_preserving_on_all_model_families() {
    let cases: Vec<MajoranaSum> = vec![
        MajoranaSum::from_fermion(&MolecularIntegrals::h2_sto3g().to_fermion_operator()),
        MajoranaSum::from_fermion(&FermiHubbard::new(2, 2).hamiltonian()),
        MajoranaSum::from_fermion(&NeutrinoModel::new(2, 2).hamiltonian()),
    ];
    for h in &cases {
        let m = hatt(h);
        let report = validate(&m);
        assert!(report.is_valid(), "{:?}", report);
        assert!(report.vacuum_preserving);
    }
}

#[test]
fn golden_pauli_weights_are_stable() {
    // Regression pins: refactors must not silently change mapping output.
    // Paper Table I (H2): JW 32, BK 34, BTT 36, HATT 32.
    let h2 = {
        let mut m =
            MajoranaSum::from_fermion(&MolecularIntegrals::h2_sto3g().to_fermion_operator());
        let _ = m.take_identity();
        m
    };
    let weight = |m: &dyn FermionMapping, h: &MajoranaSum| {
        let mut hq = m.map_majorana_sum(h);
        let _ = hq.take_identity();
        hq.weight()
    };
    assert_eq!(weight(&jordan_wigner(4), &h2), 32);
    assert_eq!(weight(&bravyi_kitaev(4), &h2), 34);
    assert_eq!(weight(&balanced_ternary_tree(4), &h2), 36);
    assert_eq!(weight(&hatt(&h2), &h2), 32);

    // Paper Table II (Hubbard 2×2): JW 80, BK 80, HATT 76 — the
    // amortized default objective beats the paper's HATT here (56,
    // which is the Fermihedral optimum).
    let hub = {
        let mut m = MajoranaSum::from_fermion(&FermiHubbard::new(2, 2).hamiltonian());
        let _ = m.take_identity();
        m
    };
    assert_eq!(weight(&jordan_wigner(8), &hub), 80);
    assert_eq!(weight(&bravyi_kitaev(8), &hub), 80);
    assert_eq!(weight(&balanced_ternary_tree(8), &hub), 84);
    assert_eq!(weight(&hatt(&hub), &hub), 56);
}

#[test]
fn unopt_and_optimized_hatt_agree_closely_on_weight() {
    // Table VI behaviour: the vacuum/caching optimizations cost ≲ 10%
    // weight on small benchmarks (paper reports ~0.43% on average).
    let cases: Vec<MajoranaSum> = vec![
        MajoranaSum::from_fermion(&FermiHubbard::new(2, 2).hamiltonian()),
        MajoranaSum::from_fermion(&FermiHubbard::new(2, 3).hamiltonian()),
        MajoranaSum::from_fermion(&MolecularIntegrals::h2_sto3g().to_fermion_operator()),
    ];
    for h in &cases {
        let unopt = hatt_with(
            h,
            &HattOptions {
                variant: Variant::Unopt,
                naive_weight: false,
                ..Default::default()
            },
        );
        let opt = hatt_with(
            h,
            &HattOptions {
                variant: Variant::Cached,
                naive_weight: false,
                ..Default::default()
            },
        );
        let wu = unopt.map_majorana_sum(h).weight() as f64;
        let wo = opt.map_majorana_sum(h).weight() as f64;
        assert!(
            (wo - wu).abs() / wu < 0.10,
            "unopt {wu} vs optimized {wo} diverged"
        );
    }
}
