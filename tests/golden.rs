//! Golden-output regression suite: the table1–table6 pipelines as
//! library calls at small N, asserted against checked-in expected
//! numbers (Pauli weights, gate counts, qubit counts).
//!
//! Deliberately exercises the deprecated `hatt`/`hatt_with` shims (see
//! `tests/deprecated_shims.rs` for the shim ≡ `Mapper` equivalence):
//! the golden numbers pin that the API redesign changed no result, on
//! the exact entry points pre-redesign callers used.
#![allow(deprecated)]
//!
//! Every value here was produced by the corresponding
//! `cargo run -p hatt-bench --bin tableN` binary at the time the suite
//! was recorded. The constructions, the Trotter/optimizer pipeline and
//! the SABRE-lite router are all deterministic, so any drift in these
//! numbers means an optimization PR changed *results*, not just speed —
//! exactly what this suite exists to catch.

use hatt_bench::{evaluate_case, preprocess, EvalCell, MappingRoster};
use hatt_circuit::{
    optimize, route_sabre, rustiq_trotter, trotter_circuit, CouplingMap, RouterOptions,
    RustiqOptions, TermOrder,
};
use hatt_core::{hatt, hatt_with, HattOptions, Variant};
use hatt_fermion::models::{FermiHubbard, NeutrinoModel};
use hatt_fermion::MajoranaSum;
use hatt_mappings::{jordan_wigner, FermionMapping};

/// `(mapping, pauli_weight, cnot, depth, single_qubit)` golden rows.
type GoldenRow = (&'static str, usize, usize, usize, usize);

fn assert_rows(case: &str, cells: &[EvalCell], expected: &[GoldenRow]) {
    assert_eq!(
        cells.len(),
        expected.len(),
        "{case}: mapping roster changed ({:?})",
        cells.iter().map(|c| c.mapping.as_str()).collect::<Vec<_>>()
    );
    for (cell, exp) in cells.iter().zip(expected) {
        assert_eq!(cell.mapping, exp.0, "{case}: mapping order changed");
        assert_eq!(
            (
                cell.pauli_weight,
                cell.metrics.cnot,
                cell.metrics.depth,
                cell.metrics.single_qubit
            ),
            (exp.1, exp.2, exp.3, exp.4),
            "{case}/{}: golden metrics drifted",
            exp.0
        );
    }
}

fn molecule(name: &str) -> MajoranaSum {
    let spec = hatt_fermion::models::molecule_catalog()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("molecule {name} missing from catalog"));
    preprocess(&spec.hamiltonian())
}

#[test]
fn table1_h2_sto3g_golden() {
    // Table I, H2/STO-3G (4 modes): exhaustive FH is in reach.
    let h = molecule("H2 sto3g");
    assert_eq!(h.n_modes(), 4);
    let cells = evaluate_case(&h, &MappingRoster::default());
    assert_rows(
        "H2 sto3g",
        &cells,
        &[
            ("JW", 32, 36, 52, 29),
            ("BK", 34, 40, 54, 21),
            ("BTT", 36, 42, 58, 27),
            ("FH", 32, 36, 51, 23),
            ("HATT", 32, 36, 52, 29),
        ],
    );
    let hq = hatt(&h).map_majorana_sum(&h);
    assert_eq!(hq.n_qubits(), 4, "HATT must use N qubits");
}

#[test]
fn table1_lih_frozen_golden() {
    // Table I, LiH/STO-3G frozen-core (6 modes), FH excluded (annealed
    // fallback is stochastic-ish in cost, not needed for the net).
    let h = molecule("LiH sto3g frz");
    assert_eq!(h.n_modes(), 6);
    let cells = evaluate_case(
        &h,
        &MappingRoster {
            include_fh: false,
            fh_anneal_limit: 0,
            ..Default::default()
        },
    );
    assert_rows(
        "LiH sto3g frz",
        &cells,
        &[
            ("JW", 264, 350, 490, 221),
            ("BK", 287, 396, 526, 185),
            ("BTT", 328, 462, 589, 217),
            ("HATT", 264, 350, 484, 216),
        ],
    );
}

#[test]
fn table2_hubbard_2x2_golden() {
    // Table II, Fermi-Hubbard 2×2 (8 modes).
    let h = preprocess(&FermiHubbard::new(2, 2).hamiltonian());
    assert_eq!(h.n_modes(), 8);
    let cells = evaluate_case(
        &h,
        &MappingRoster {
            include_fh: false,
            fh_anneal_limit: 0,
            ..Default::default()
        },
    );
    assert_rows(
        "Hubbard 2x2",
        &cells,
        &[
            ("JW", 80, 104, 127, 65),
            ("BK", 80, 102, 129, 66),
            ("BTT", 84, 110, 143, 67),
            // The restart portfolio beats the paper's own HATT number
            // here (76 in Table II): 56 = 70% of JW.
            ("HATT", 56, 56, 80, 62),
        ],
    );
}

#[test]
fn table3_neutrino_3x2f_golden() {
    // Table III, collective neutrino oscillation 3×2F (12 modes).
    let h = preprocess(&NeutrinoModel::new(3, 2).hamiltonian());
    assert_eq!(h.n_modes(), 12);
    let cells = evaluate_case(
        &h,
        &MappingRoster {
            include_fh: false,
            fh_anneal_limit: 0,
            ..Default::default()
        },
    );
    assert_rows(
        "neutrino 3x2F",
        &cells,
        &[
            ("JW", 252, 336, 207, 208),
            ("BK", 303, 432, 375, 168),
            ("BTT", 432, 602, 684, 219),
            // Strictly below JW (the seed's greedy used to tie at 252).
            ("HATT", 234, 300, 190, 140),
        ],
    );
}

#[test]
fn table4_routed_h2_golden() {
    // Table IV logic: H2 through Trotter → optimize → SABRE-lite on the
    // Manhattan coupling map → re-optimize.
    let h = molecule("H2 sto3g");
    let arch = CouplingMap::manhattan65();
    let mut got = Vec::new();
    let n = h.n_modes();
    for mapping in [
        Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
        Box::new(hatt(&h).as_tree_mapping().clone()),
    ] {
        let hq = mapping.map_majorana_sum(&h);
        let circ = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
        let routed = route_sabre(&circ, &arch, &RouterOptions::default());
        let m = optimize(&routed.circuit).metrics();
        got.push((m.cnot, m.single_qubit, m.depth));
    }
    assert_eq!(got[0], (49, 29, 63), "JW routed metrics drifted");
    assert_eq!(got[1], (49, 29, 63), "HATT routed metrics drifted");
}

#[test]
fn table5_rustiq_h2_golden() {
    // Table V logic: H2 through the Rustiq-lite greedy synthesizer.
    let h = molecule("H2 sto3g");
    let opts = RustiqOptions::default();
    let n = h.n_modes();
    let mut got = Vec::new();
    for mapping in [
        Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
        Box::new(hatt(&h).as_tree_mapping().clone()),
    ] {
        let hq = mapping.map_majorana_sum(&h);
        let circ = optimize(&rustiq_trotter(&hq, 1.0, 1, &opts));
        let m = circ.metrics();
        got.push((m.cnot, m.single_qubit, m.depth));
    }
    assert_eq!(got[0], (20, 23, 27), "JW rustiq metrics drifted");
    assert_eq!(got[1], (20, 23, 27), "HATT rustiq metrics drifted");
}

#[test]
fn table6_unopt_vs_cached_golden() {
    // Table VI logic: Algorithm 1 vs Algorithms 2+3 settled weight.
    let weight = |h: &MajoranaSum, variant: Variant| -> usize {
        let m = hatt_with(
            h,
            &HattOptions {
                variant,
                naive_weight: false,
                ..Default::default()
            },
        );
        let mut hq = m.map_majorana_sum(h);
        let _ = hq.take_identity();
        hq.weight()
    };
    let h2 = molecule("H2 sto3g");
    assert_eq!(weight(&h2, Variant::Unopt), 32);
    assert_eq!(weight(&h2, Variant::Cached), 32);
    let hub = preprocess(&FermiHubbard::new(2, 2).hamiltonian());
    // Under the amortized default objective both variants reach 56 here
    // (the seed's myopic greedy settled for 82 / 76).
    assert_eq!(weight(&hub, Variant::Unopt), 56);
    assert_eq!(weight(&hub, Variant::Cached), 56);
}

#[test]
fn hatt_never_loses_to_jordan_wigner_golden() {
    // The paper's headline claim (Table I / Fig. 10): HATT's Pauli
    // weight is never worse than Jordan-Wigner's. Under the quality
    // policy (the restart portfolio the tables use) this holds on every
    // Table I molecule and every neutrino model up to 20 modes —
    // strictly better everywhere except the H2/LiH cases where JW is
    // already optimal. Exact weights are pinned so improvements are
    // deliberate.
    use hatt_fermion::models::NeutrinoModel;
    let opts = HattOptions::with_policy(hatt_mappings::SelectionPolicy::quality());
    let weigh = |name: &str, h: &MajoranaSum, expect_hatt: usize| {
        let w_jw = jordan_wigner(h.n_modes()).map_majorana_sum(h).weight();
        let w_hatt = hatt_with(h, &opts).map_majorana_sum(h).weight();
        assert!(
            w_hatt <= w_jw,
            "{name}: HATT ({w_hatt}) must not lose to JW ({w_jw})"
        );
        assert_eq!(w_hatt, expect_hatt, "{name}: HATT weight drifted");
    };
    // Table I molecules (JW weights: 32, 264, 3800, 7276, 18616).
    weigh("H2 sto3g", &molecule("H2 sto3g"), 32);
    weigh("LiH sto3g frz", &molecule("LiH sto3g frz"), 264);
    weigh("LiH sto3g", &molecule("LiH sto3g"), 3800);
    weigh("H2O sto3g", &molecule("H2O sto3g"), 7276);
    weigh("CH4 sto3g", &molecule("CH4 sto3g"), 18531);
    // Neutrino models up to 20 modes (JW: 88, 252, 1072, 798, 2548).
    weigh(
        "neutrino 2x2F",
        &preprocess(&NeutrinoModel::new(2, 2).hamiltonian()),
        76,
    );
    weigh(
        "neutrino 3x2F",
        &preprocess(&NeutrinoModel::new(3, 2).hamiltonian()),
        234,
    );
    weigh(
        "neutrino 4x2F",
        &preprocess(&NeutrinoModel::new(4, 2).hamiltonian()),
        1020,
    );
    weigh(
        "neutrino 3x3F",
        &preprocess(&NeutrinoModel::new(3, 3).hamiltonian()),
        762,
    );
    weigh(
        "neutrino 5x2F",
        &preprocess(&NeutrinoModel::new(5, 2).hamiltonian()),
        2484,
    );
}

#[test]
fn construction_stats_match_mapped_weight_golden() {
    // The settled-weight objective equals the mapped Hamiltonian weight
    // for every catalog case used above — the invariant that lets the
    // perf harness report weights without re-mapping.
    for (name, h) in [
        ("H2 sto3g", molecule("H2 sto3g")),
        (
            "hubbard 2x2",
            preprocess(&FermiHubbard::new(2, 2).hamiltonian()),
        ),
        (
            "neutrino 3x2F",
            preprocess(&NeutrinoModel::new(3, 2).hamiltonian()),
        ),
    ] {
        let m = hatt(&h);
        let hq = m.map_majorana_sum(&h);
        assert_eq!(
            m.stats().total_weight(),
            hq.weight(),
            "{name}: objective / mapped weight mismatch"
        );
        assert_eq!(hq.n_qubits(), h.n_modes(), "{name}: qubit count");
    }
}
