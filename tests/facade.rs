//! Facade-crate coverage: the examples must keep building, and the
//! `hatt::prelude` surface must round-trip the core pipeline.

use hatt::fermion::FermionOperator;
use hatt::fermion::MajoranaSum;
use hatt::mappings::FermionMapping;
use hatt::prelude::*;

/// Builds every example in `examples/` (`cargo build --examples`), so a
/// drifting facade API is caught by `cargo test` rather than by a user.
#[test]
fn examples_build() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = env!("CARGO");
    let status = std::process::Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .status()
        .expect("failed to spawn cargo");
    assert!(
        status.success(),
        "`cargo build --examples` failed: {status}"
    );
}

/// Parse → display round-trip through the prelude's `PauliString`.
#[test]
fn prelude_pauli_string_round_trip() {
    let s: PauliString = "XYZI".parse().expect("valid Pauli string");
    assert_eq!(s.to_string(), "XYZI");
    assert_eq!(s.weight(), 3);
    let reparsed: PauliString = s.to_string().parse().expect("display is parseable");
    assert_eq!(s, reparsed);
}

/// Maps a small 4-mode Hamiltonian through the prelude's `Mapper` and
/// checks the mapped Pauli weight is positive and bounded.
#[test]
fn prelude_four_mode_hatt_round_trip() {
    // H = Σ_p n_p + 0.5·Σ_p (a†_p a_{p+1} + h.c.) on 4 modes.
    let mut h = FermionOperator::new(4);
    for p in 0..4 {
        h.add_number(Complex64::ONE, p);
    }
    for p in 0..3 {
        h.add_hopping(Complex64::real(0.5), p, p + 1);
    }
    let majorana = MajoranaSum::from_fermion(&h);
    let mapping = Mapper::new().map(&majorana).expect("non-empty Hamiltonian");
    let mapped: PauliSum = mapping.map_majorana_sum(&majorana);
    let weight = mapped.weight();
    assert!(weight > 0, "mapped Hamiltonian must have positive weight");
    // 4 modes → 9 qubits; a crude upper bound on total weight.
    assert!(
        weight < mapped.n_terms() * mapped.n_qubits().max(1) + 1,
        "weight {weight} exceeds terms×qubits bound"
    );
}
