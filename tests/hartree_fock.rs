//! Occupied-state integration tests: applying mapped creation operators
//! to the qubit vacuum must reproduce fermionic occupation physics — the
//! Hartree-Fock energy of H2 and particle-number bookkeeping — for every
//! vacuum-preserving mapping.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::core::Mapper;
use hatt::fermion::models::MolecularIntegrals;
use hatt::fermion::MajoranaSum;
use hatt::mappings::{balanced_ternary_tree, bravyi_kitaev, jordan_wigner, parity, FermionMapping};
use hatt::pauli::Complex64;
use hatt::sim::StateVector;

/// Applies the mapped creation operator `a†_j = (M_2j − i·M_2j+1)/2` to a
/// state.
fn apply_creation<M: FermionMapping + ?Sized>(
    mapping: &M,
    j: usize,
    state: &StateVector,
) -> StateVector {
    let mut even = state.clone();
    even.apply_pauli(mapping.majorana(2 * j));
    let mut odd = state.clone();
    odd.apply_pauli(mapping.majorana(2 * j + 1));
    let amps: Vec<Complex64> = even
        .amplitudes()
        .iter()
        .zip(odd.amplitudes())
        .map(|(&e, &o)| (e - o.mul_i()) * 0.5)
        .collect();
    StateVector::from_amplitudes(amps)
}

fn mappings_under_test(h: &MajoranaSum) -> Vec<Box<dyn FermionMapping>> {
    let n = h.n_modes();
    vec![
        Box::new(jordan_wigner(n)),
        Box::new(parity(n)),
        Box::new(bravyi_kitaev(n)),
        Box::new(balanced_ternary_tree(n)),
        Box::new(Mapper::new().map(h).expect("non-empty Hamiltonian")),
    ]
}

#[test]
fn hartree_fock_energy_of_h2() {
    // |HF⟩ = a†_{g↑} a†_{g↓} |vac⟩ with E_HF = 2·h_gg + (gg|gg).
    let integrals = MolecularIntegrals::h2_sto3g();
    let e_hf = 2.0 * integrals.h1(0, 0) + integrals.eri(0, 0, 0, 0);
    let op = integrals.to_fermion_operator();
    let h = MajoranaSum::from_fermion(&op);
    for mapping in mappings_under_test(&h) {
        let hq = mapping.map_majorana_sum(&h);
        // Block ordering: g↑ = mode 0, g↓ = mode 2.
        let vacuum = StateVector::zero_state(4);
        let psi = apply_creation(&*mapping, 2, &apply_creation(&*mapping, 0, &vacuum));
        let e = psi.expectation(&hq);
        assert!(
            (e - e_hf).abs() < 1e-8,
            "{}: ⟨HF|H|HF⟩ = {e}, expected {e_hf}",
            mapping.name()
        );
    }
}

#[test]
fn vacuum_energy_is_zero_body_constant() {
    // ⟨vac|H|vac⟩ must equal the constant term of the Majorana form.
    let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
    let h = MajoranaSum::from_fermion(&op);
    for mapping in mappings_under_test(&h) {
        let hq = mapping.map_majorana_sum(&h);
        let vacuum = StateVector::zero_state(4);
        let e = vacuum.expectation(&hq);
        assert!(
            e.abs() < 1e-8,
            "{}: vacuum energy {e} should vanish for a normal-ordered H",
            mapping.name()
        );
    }
}

#[test]
fn creation_operators_anticommute_via_states() {
    // a†_0 a†_1 |vac⟩ = −a†_1 a†_0 |vac⟩.
    let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
    let h = MajoranaSum::from_fermion(&op);
    for mapping in mappings_under_test(&h) {
        let vacuum = StateVector::zero_state(4);
        let ab = apply_creation(&*mapping, 1, &apply_creation(&*mapping, 0, &vacuum));
        let ba = apply_creation(&*mapping, 0, &apply_creation(&*mapping, 1, &vacuum));
        let overlap = ab.inner_product(&ba);
        assert!(
            overlap.approx_eq(-Complex64::ONE, 1e-9),
            "{}: ⟨01|10⟩ = {overlap}, expected −1",
            mapping.name()
        );
    }
}

#[test]
fn double_creation_annihilates() {
    // (a†_0)² |vac⟩ = 0: the resulting (unnormalized) amplitudes vanish.
    let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
    let h = MajoranaSum::from_fermion(&op);
    for mapping in mappings_under_test(&h) {
        let vacuum = StateVector::zero_state(4);
        let once = apply_creation(&*mapping, 0, &vacuum);
        // Repeat without normalization to observe the zero vector.
        let mut even = once.clone();
        even.apply_pauli(mapping.majorana(0));
        let mut odd = once.clone();
        odd.apply_pauli(mapping.majorana(1));
        let norm: f64 = even
            .amplitudes()
            .iter()
            .zip(odd.amplitudes())
            .map(|(&e, &o)| ((e - o.mul_i()) * 0.5).norm_sqr())
            .sum();
        assert!(
            norm < 1e-18,
            "{}: (a†)²|vac⟩ has norm² {norm}, expected 0",
            mapping.name()
        );
    }
}
