//! Parallel-determinism harness: the threaded construction engine must
//! be **bit-identical** to the sequential one.
//!
//! Two code paths fan out over scoped worker threads (see
//! `docs/ARCHITECTURE.md`, "Threading model"): the `restarts` portfolio
//! members and the beam's per-state candidate scans. Both reduce their
//! results in a fixed order, so thread count must never change a tree,
//! a settled weight, or a downstream circuit metric. This suite pins
//! that on every Table I molecule and every neutrino model the golden
//! suite covers, at worker counts 1, 2 and 4.
//!
//! Worker counts are injected through `HattOptions::threads` — the same
//! code path the `HATT_THREADS` environment variable feeds (see
//! `vendor/parallel`); the env route itself is covered by the CI test
//! matrix, which runs this whole suite once under `HATT_THREADS=1` and
//! once at the hardware default. Mutating the variable *here* would race
//! against the concurrent test harness.

// Deliberately exercises the deprecated free-function shims: the
// determinism pins must hold on the exact entry points pre-redesign
// callers used (Mapper equivalence is pinned in tests/deprecated_shims.rs).
#![allow(deprecated)]

use hatt_bench::{evaluate_mapping, preprocess};
use hatt_core::{hatt_with, map_many, map_many_cached, HattOptions, MappingCache};
use hatt_fermion::models::{molecule_catalog, NeutrinoModel};
use hatt_fermion::MajoranaSum;
use hatt_mappings::SelectionPolicy;

/// The golden roster: every Table I molecule and the neutrino models up
/// to 20 modes (the exact set `tests/golden.rs` pins weights for).
fn roster() -> Vec<(String, MajoranaSum)> {
    let mut cases = Vec::new();
    for spec in molecule_catalog() {
        cases.push((spec.name.to_string(), preprocess(&spec.hamiltonian())));
    }
    for (sites, flavors) in [(2, 2), (3, 2), (4, 2), (3, 3), (5, 2)] {
        let model = NeutrinoModel::new(sites, flavors);
        cases.push((
            format!("neutrino {}", model.label()),
            preprocess(&model.hamiltonian()),
        ));
    }
    cases
}

fn restarts_with_threads(workers: usize) -> HattOptions {
    HattOptions {
        policy: SelectionPolicy::Restarts,
        threads: Some(workers),
        ..Default::default()
    }
}

/// Per-step settled weights — the full construction trace, not just the
/// total, so a reshuffled-but-same-total schedule still fails.
fn step_weights(m: &hatt_core::HattMapping) -> Vec<usize> {
    m.stats()
        .iterations
        .iter()
        .map(|it| it.settled_weight)
        .collect()
}

#[test]
fn threaded_restarts_is_bit_identical_to_sequential() {
    // Circuit compilation (Trotter → optimize → metrics) is only run for
    // the small/medium cases: it is strictly downstream of the tree, so
    // tree identity implies metric identity, but asserting CNOT/depth
    // directly on those cases guards the whole pipeline cheaply.
    const METRICS_MAX_MODES: usize = 12;
    for (name, h) in roster() {
        let seq = hatt_with(&h, &restarts_with_threads(1));
        let seq_metrics =
            (h.n_modes() <= METRICS_MAX_MODES).then(|| evaluate_mapping(&seq, &h, 0.0).metrics);
        for workers in [2, 4] {
            let par = hatt_with(&h, &restarts_with_threads(workers));
            assert_eq!(
                par.tree(),
                seq.tree(),
                "{name}: tree differs at {workers} workers"
            );
            assert_eq!(
                par.stats().total_weight(),
                seq.stats().total_weight(),
                "{name}: total weight differs at {workers} workers"
            );
            assert_eq!(
                step_weights(&par),
                step_weights(&seq),
                "{name}: per-step weights differ at {workers} workers"
            );
            if let Some(expect) = &seq_metrics {
                let got = evaluate_mapping(&par, &h, 0.0).metrics;
                assert_eq!(
                    (got.cnot, got.depth, got.single_qubit),
                    (expect.cnot, expect.depth, expect.single_qubit),
                    "{name}: circuit metrics differ at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn map_many_matches_per_element_construction_in_input_order() {
    // The full roster plus a duplicate-structure tail (a rescaled copy
    // of the first Hamiltonian), so the batch exercises cache hits too.
    let mut batch: Vec<MajoranaSum> = roster().into_iter().map(|(_, h)| h).collect();
    let repeat = batch[0].scaled(1.75);
    batch.push(repeat);

    let expect: Vec<_> = batch
        .iter()
        .map(|h| hatt_with(h, &HattOptions::default()))
        .collect();
    for workers in [1, 2, 4] {
        let opts = HattOptions {
            threads: Some(workers),
            ..Default::default()
        };
        let got = map_many(&batch, &opts);
        assert_eq!(got.len(), batch.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(
                g.tree(),
                e.tree(),
                "batch slot {i}: tree differs at {workers} workers (order or determinism broken)"
            );
            assert_eq!(
                g.stats().total_weight(),
                e.stats().total_weight(),
                "batch slot {i}: weight differs at {workers} workers"
            );
        }
    }
}

#[test]
fn map_many_under_restarts_hits_the_cache_and_stays_identical() {
    // The quality policy through the batch path: three same-structure
    // neutrino Hamiltonians — one construction, two replays, all three
    // bit-identical to the direct restarts run.
    let h = preprocess(&NeutrinoModel::new(3, 2).hamiltonian());
    let batch = vec![h.clone(), h.scaled(2.0), h.scaled(0.5)];
    let cache = MappingCache::new();
    let opts = HattOptions {
        policy: SelectionPolicy::Restarts,
        threads: Some(4),
        ..Default::default()
    };
    let maps = map_many_cached(&batch, &opts, &cache);
    let direct = hatt_with(&h, &HattOptions::with_policy(SelectionPolicy::Restarts));
    for (i, m) in maps.iter().enumerate() {
        assert_eq!(m.tree(), direct.tree(), "slot {i} tree drifted");
        assert_eq!(m.stats().total_weight(), direct.stats().total_weight());
    }
    assert_eq!(cache.len(), 1, "one structure, one entry");
    // In-flight dedup: one worker claims the structure and constructs,
    // the other two block on the slot and replay — deterministically 2
    // hits even though all three run concurrently.
    assert_eq!((cache.hits(), cache.misses()), (2, 1));
}

#[test]
fn worker_resolution_prefers_explicit_threads() {
    assert_eq!(HattOptions::with_threads(3).workers(), 3);
    assert_eq!(
        HattOptions {
            threads: Some(0),
            ..Default::default()
        }
        .workers(),
        1,
        "a zero cap clamps to one worker"
    );
    assert!(HattOptions::default().workers() >= 1);
}
