//! End-to-end tracing through the sharded topology: one traced `map`
//! request entering a router in front of two `--trace` shard daemons
//! must come back as a *single* trace — one trace ID whose spans cover
//! the router's accept/parse/hash/forward stages and the serving
//! shard's queue/construction/write stages, stitched across processes
//! by the forward-hop span the router stamps into the sub-request's
//! `trace_ctx`.

// Test-harness code unwraps freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::time::Duration;

use hatt::core::Mapper;
use hatt::fermion::MajoranaSum;
use hatt::service::{client, MapRequest, Server, ServerConfig, TraceSpan};

/// Boots two traced shards and a traced router over them.
fn boot_traced_topology() -> (Server, Server, Server) {
    let config = ServerConfig {
        trace: true,
        ..ServerConfig::default()
    };
    let shard_a = Server::bind("127.0.0.1:0", Mapper::new(), config.clone()).expect("bind shard a");
    let shard_b = Server::bind("127.0.0.1:0", Mapper::new(), config.clone()).expect("bind shard b");
    let shard_addrs = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Server::bind_router("127.0.0.1:0", &shard_addrs, config).expect("bind router");
    (router, shard_a, shard_b)
}

/// Merges every daemon's dump into per-trace span lists. Spans recorded
/// by different daemons share the trace ID, so concatenation joins the
/// cross-process tree.
fn merged_traces(addrs: &[SocketAddr]) -> BTreeMap<u64, Vec<TraceSpan>> {
    let mut merged: BTreeMap<u64, Vec<TraceSpan>> = BTreeMap::new();
    for addr in addrs {
        let dump = client::trace_dump(addr, "trace-it").expect("trace_dump answers");
        assert!(dump.enabled, "daemon at {addr} must be tracing");
        for tree in dump.traces {
            merged.entry(tree.trace_id).or_default().extend(tree.spans);
        }
    }
    merged
}

#[test]
fn a_traced_map_through_two_shards_is_one_trace_with_nested_spans() {
    let (router, shard_a, shard_b) = boot_traced_topology();
    let addrs = vec![
        router.local_addr(),
        shard_a.local_addr(),
        shard_b.local_addr(),
    ];

    let req = MapRequest::new("trace-it", vec![MajoranaSum::uniform_singles(6)]);
    let reply = client::request(router.local_addr(), &req).expect("routed map");
    assert_eq!(reply.done.errors, 0);

    // The router's write-drain span lands moments after the client reads
    // `map_done`; poll until the merged dumps carry the full tree.
    let required = [
        "request",
        "accept",
        "frame.parse",
        "queue.wait",
        "route.hash",
        "route.forward",
        "construct",
        "write.drain",
    ];
    let mut traces = BTreeMap::new();
    for _ in 0..200 {
        traces = merged_traces(&addrs);
        let names: BTreeSet<&str> = traces.values().flatten().map(|s| s.name.as_str()).collect();
        if required.iter().all(|n| names.contains(n)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    assert_eq!(
        traces.len(),
        1,
        "one traced request must yield exactly one trace ID, got {:?}",
        traces.keys().collect::<Vec<_>>()
    );
    let (trace_id, spans) = traces.into_iter().next().unwrap();
    assert_ne!(trace_id, 0);

    let names: BTreeSet<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for name in required {
        assert!(names.contains(name), "missing span {name}: {names:?}");
    }

    // The acceptance bar: at least six spans nested under the trace.
    let nested = spans.iter().filter(|s| s.parent_span != 0).count();
    assert!(nested >= 6, "only {nested} nested spans: {spans:?}");

    // Exactly one root (the router's request span) and no orphans: every
    // non-root parent must itself be a recorded span — including the
    // cross-process seam, where the shard's request span parents on the
    // router's forward-hop span.
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let roots = spans.iter().filter(|s| s.parent_span == 0).count();
    assert_eq!(roots, 1, "exactly one root span: {spans:?}");
    for s in &spans {
        assert!(
            s.parent_span == 0 || ids.contains(&s.parent_span),
            "orphaned span {s:?}"
        );
    }

    // The shard-side construction is stitched under the router's
    // forward hop (transitively): walk construct's ancestry to a
    // route.forward span.
    let by_id: BTreeMap<u64, &TraceSpan> = spans.iter().map(|s| (s.span_id, s)).collect();
    let construct = spans.iter().find(|s| s.name == "construct").unwrap();
    let mut cursor = construct.parent_span;
    let mut crossed_forward = false;
    while cursor != 0 {
        let span = by_id[&cursor];
        if span.name == "route.forward" {
            crossed_forward = true;
        }
        cursor = span.parent_span;
    }
    assert!(
        crossed_forward,
        "construct must hang under the router's forward hop: {spans:?}"
    );

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn untraced_daemons_answer_trace_dump_with_enabled_false() {
    let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())
        .expect("bind ephemeral port");
    let dump = client::trace_dump(server.local_addr(), "off").expect("trace_dump answers");
    assert!(!dump.enabled);
    assert!(dump.traces.is_empty());

    // And stats omits the trace summary entirely when tracing is off.
    let stats = client::stats(server.local_addr(), "off").expect("stats answers");
    assert!(stats.trace.is_none());
    server.shutdown();
}

#[test]
fn stats_counts_verbs_uptime_and_the_trace_summary() {
    let config = ServerConfig {
        trace: true,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Mapper::new(), config).expect("bind ephemeral port");
    let req = MapRequest::new("s", vec![MajoranaSum::uniform_singles(4)]);
    client::request(server.local_addr(), &req).expect("map");

    let stats = client::stats(server.local_addr(), "s").expect("stats answers");
    assert_eq!(stats.verbs.map, 1);
    assert_eq!(stats.verbs.stats, 1, "this probe counts itself");
    let trace = stats.trace.expect("trace summary present under --trace");
    assert!(trace.capacity > 0);
    assert!(trace.recorded > 0, "the traced map must record spans");
    server.shutdown();
}
