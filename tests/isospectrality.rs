//! Physics-preservation integration tests: every fermion-to-qubit mapping
//! of the same Hamiltonian must produce an *isospectral* qubit
//! Hamiltonian — the strongest cross-mapping correctness check available.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::core::{HattOptions, Mapper, Variant};
use hatt::fermion::models::{random_hermitian, FermiHubbard, MolecularIntegrals};
use hatt::fermion::{FermionOperator, MajoranaSum};
use hatt::mappings::{
    balanced_ternary_tree, bravyi_kitaev, exhaustive_optimal, jordan_wigner, parity, FermionMapping,
};
use hatt::sim::spectrum;

fn spectra_match(a: &[f64], b: &[f64], eps: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < eps)
}

fn all_mappings(h: &MajoranaSum) -> Vec<Box<dyn FermionMapping>> {
    let n = h.n_modes();
    vec![
        Box::new(jordan_wigner(n)),
        Box::new(parity(n)),
        Box::new(bravyi_kitaev(n)),
        Box::new(balanced_ternary_tree(n)),
        Box::new(exhaustive_optimal(h).0),
        Box::new(hatt_with(
            h,
            &HattOptions {
                variant: Variant::Unopt,
                naive_weight: false,
                ..Default::default()
            },
        )),
        Box::new(hatt_with(
            h,
            &HattOptions {
                variant: Variant::Cached,
                naive_weight: false,
                ..Default::default()
            },
        )),
    ]
}

fn check_isospectral(op: &FermionOperator, label: &str) {
    let h = MajoranaSum::from_fermion(op);
    let mappings = all_mappings(&h);
    let reference = spectrum(&mappings[0].map_majorana_sum(&h));
    for m in &mappings[1..] {
        let s = spectrum(&m.map_majorana_sum(&h));
        assert!(
            spectra_match(&reference, &s, 1e-7),
            "{label}: {} spectrum deviates from JW\nJW:  {:?}\n{}: {:?}",
            m.name(),
            &reference[..4.min(reference.len())],
            m.name(),
            &s[..4.min(s.len())]
        );
    }
}

/// One construction through the `Mapper` handle (fresh handle per call —
/// identical results and stats to the old `hatt_with` free function).
fn hatt_with(h: &MajoranaSum, opts: &HattOptions) -> hatt::core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

#[test]
fn h2_molecule_is_isospectral_across_mappings() {
    let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
    check_isospectral(&op, "H2/STO-3G");
}

#[test]
fn hubbard_1x3_is_isospectral_across_mappings() {
    // 6 modes → 64-dimensional spectra.
    let op = FermiHubbard::new(1, 3).hamiltonian();
    check_isospectral(&op, "Hubbard 1x3");
}

#[test]
fn random_hamiltonians_are_isospectral_across_mappings() {
    for seed in 0..3 {
        let op = random_hermitian(4, 5, 3, seed);
        check_isospectral(&op, &format!("random seed {seed}"));
    }
}

#[test]
fn h2_ground_energy_matches_published_value() {
    // FCI electronic energy of H2/STO-3G at 0.7414 Å ≈ −1.8516 Ha
    // (the paper's Fig. 11 quotes −1.857 at its geometry).
    let op = MolecularIntegrals::h2_sto3g().to_fermion_operator();
    let h = MajoranaSum::from_fermion(&op);
    for m in all_mappings(&h) {
        let hq = m.map_majorana_sum(&h);
        let eigs = spectrum(&hq);
        assert!(
            (eigs[0] + 1.8516).abs() < 2e-3,
            "{}: ground energy {} differs from −1.8516",
            m.name(),
            eigs[0]
        );
    }
}
