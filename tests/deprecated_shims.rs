//! Shim-coverage suite: the deprecated free functions must stay exact
//! aliases of the `Mapper` handle API — same trees, same stats, same
//! panic behaviour. This is the one test target where deprecation
//! warnings are silenced on purpose; everything else in the workspace
//! builds warning-free against the new API.
#![allow(deprecated)]

use hatt::core::{
    compile, hatt, hatt_for_fermion, hatt_with, map_many, map_many_cached, HattOptions, Mapper,
    MappingCache,
};
use hatt::fermion::models::{FermiHubbard, NeutrinoModel};
use hatt::fermion::{FermionOperator, MajoranaSum};
use hatt::mappings::SelectionPolicy;
use hatt::prelude::Complex64;

fn cases() -> Vec<MajoranaSum> {
    let mut v = vec![
        MajoranaSum::from_fermion(&FermiHubbard::new(2, 2).hamiltonian()),
        MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian()),
    ];
    for h in &mut v {
        let _ = h.take_identity();
    }
    v
}

#[test]
fn hatt_shim_equals_mapper_map() {
    for h in cases() {
        let old = hatt(&h);
        let new = Mapper::new().map(&h).unwrap();
        assert_eq!(old.tree(), new.tree());
        assert_eq!(old.stats().total_weight(), new.stats().total_weight());
        assert_eq!(
            old.stats().total_candidates(),
            new.stats().total_candidates()
        );
    }
}

#[test]
fn hatt_with_shim_equals_mapper_with_options() {
    for policy in [
        SelectionPolicy::Greedy,
        SelectionPolicy::Beam { width: 4 },
        SelectionPolicy::Restarts,
    ] {
        for h in cases() {
            let opts = HattOptions::with_policy(policy);
            let old = hatt_with(&h, &opts);
            let new = Mapper::with_options(opts).map(&h).unwrap();
            assert_eq!(old.tree(), new.tree(), "{policy}");
            assert_eq!(
                old.stats().total_weight(),
                new.stats().total_weight(),
                "{policy}"
            );
        }
    }
}

#[test]
fn hatt_for_fermion_and_compile_shims_agree() {
    let mut op = FermionOperator::new(3);
    op.add_number(Complex64::ONE, 0);
    op.add_hopping(Complex64::real(0.5), 0, 2);
    let old = hatt_for_fermion(&op);
    let new = Mapper::new().map_fermion(&op).unwrap();
    assert_eq!(old.tree(), new.tree());

    let h = MajoranaSum::from_fermion(&op);
    let (old_m, old_hq) = compile(&h);
    let (new_m, new_hq) = Mapper::new().compile(&h).unwrap();
    assert_eq!(old_m.tree(), new_m.tree());
    assert_eq!(old_hq, new_hq);
}

#[test]
fn map_many_shims_equal_map_batch() {
    let base = cases().remove(0);
    let batch = vec![base.clone(), base.scaled(2.0), cases().remove(1)];
    let opts = HattOptions::default();
    let old = map_many(&batch, &opts);
    let cache = MappingCache::new();
    let old_cached = map_many_cached(&batch, &opts, &cache);
    let mapper = Mapper::new();
    let new = mapper.map_batch(&batch).unwrap();
    assert_eq!(old.len(), new.len());
    for i in 0..new.len() {
        assert_eq!(old[i].tree(), new[i].tree(), "slot {i}");
        assert_eq!(old_cached[i].tree(), new[i].tree(), "slot {i} cached");
    }
    assert_eq!(cache.hits(), mapper.cache().hits());
    assert_eq!(cache.misses(), mapper.cache().misses());
}

#[test]
#[should_panic(expected = "at least one mode")]
fn shims_keep_the_historic_panic_on_zero_modes() {
    let _ = hatt(&MajoranaSum::new(0));
}
