//! The incremental-remapping differential harness: for randomized
//! add/remove/compose/undo delta sequences over the Table I roster,
//! neutrino models and synthetic molecules, `Mapper::remap` must be
//! **bit-identical** to a fresh `Mapper::map` of the post-delta
//! Hamiltonian — tree, per-step settled weights, mapped Pauli sum and
//! compiled CNOT/depth — for every policy of the selection portfolio,
//! at 1/2/4 worker threads, and through the `hattd` socket as well as
//! the in-process API. It also pins the *point* of the feature: on
//! single-term deltas the incremental path must run strictly fewer
//! cold constructions than rebuilding from scratch.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt::circuit::{trotter_circuit, TermOrder};
use hatt::core::{HattMapping, Mapper};
use hatt::fermion::models::{molecule_catalog, random_hermitian, NeutrinoModel};
use hatt::fermion::{FermionOperator, HamiltonianDelta, MajoranaSum};
use hatt::mappings::{FermionMapping, SelectionPolicy};
use hatt::pauli::Complex64;
use hatt::service::{client, MapDeltaRequest, MapRequest, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1e-12;

/// The acceptance floor: every policy must see at least this many
/// differential cases.
const MIN_CASES_PER_POLICY: usize = 64;

fn preprocess(h: &FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(h);
    let _ = m.take_identity();
    m.prune(1e-10);
    m
}

fn mapper_with(policy: SelectionPolicy, threads: Option<usize>) -> Mapper {
    let mut builder = Mapper::builder().policy(policy);
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    builder.build().expect("mapper builds")
}

/// A random absent-term support: distinct Majorana indices in
/// canonical (sorted) order that do not collide with an existing term.
fn random_absent_support(rng: &mut StdRng, work: &MajoranaSum) -> Vec<u32> {
    let n_majoranas = 2 * work.n_modes();
    loop {
        let k = [2usize, 3, 4, 6][rng.gen_range(0..4usize)].min(n_majoranas);
        let mut support: Vec<u32> = Vec::with_capacity(k);
        while support.len() < k {
            let i = rng.gen_range(0..n_majoranas) as u32;
            if !support.contains(&i) {
                support.push(i);
            }
        }
        support.sort_unstable();
        if work.coefficient_of(&support).is_zero(EPS) {
            return support;
        }
    }
}

/// A coefficient keeping the edited Hamiltonian Hermitian: a Majorana
/// monomial of length `k` conjugates to `(−1)^{k(k−1)/2}` times itself,
/// so its coefficient must be real when that sign is `+` and purely
/// imaginary when it is `−`.
fn hermitian_coeff(k: usize, magnitude: f64) -> Complex64 {
    if (k * (k - 1) / 2) % 2 == 0 {
        Complex64::real(magnitude)
    } else {
        Complex64::new(0.0, magnitude)
    }
}

/// One random applicable edit script of 1–3 term insertions/removals.
fn random_delta(rng: &mut StdRng, h: &MajoranaSum) -> HamiltonianDelta {
    let mut delta = HamiltonianDelta::new(h.n_modes());
    // Track the would-be state so every op in the script stays
    // applicable (no double-adds, no removals below one term).
    let mut work = h.clone();
    for _ in 0..rng.gen_range(1..=3usize) {
        if work.n_terms() > 1 && rng.gen_bool(0.4) {
            let terms: Vec<(Vec<u32>, Complex64)> =
                work.iter().map(|(s, c)| (s.to_vec(), c)).collect();
            let (support, coeff) = terms[rng.gen_range(0..terms.len())].clone();
            delta.push_remove(coeff, &support).expect("removal applies");
            work.remove_term(&support);
        } else {
            let support = random_absent_support(rng, &work);
            let coeff = hermitian_coeff(support.len(), 0.1 + 0.9 * rng.gen_range(0.0..1.0f64));
            delta.push_add(coeff, &support).expect("insertion applies");
            work.add(coeff, &support);
        }
    }
    delta
}

/// The bit-identity contract: everything a caller can observe about the
/// mapping must match a fresh build. Candidate/traversal counters are
/// *excluded* by design — doing less work is the feature.
fn assert_equiv(
    ctx: &str,
    next: &MajoranaSum,
    incremental: &HattMapping,
    fresh: &HattMapping,
    check_compile: bool,
) {
    assert_eq!(incremental.tree(), fresh.tree(), "{ctx}: tree drifted");
    let (a, b) = (incremental.stats(), fresh.stats());
    assert_eq!(a.n_terms, b.n_terms, "{ctx}: n_terms drifted");
    let wa: Vec<usize> = a.iterations.iter().map(|i| i.settled_weight).collect();
    let wb: Vec<usize> = b.iterations.iter().map(|i| i.settled_weight).collect();
    assert_eq!(wa, wb, "{ctx}: per-step settled weights drifted");
    assert_eq!(
        a.total_weight(),
        b.total_weight(),
        "{ctx}: total weight drifted"
    );
    let pa = incremental.map_majorana_sum(next);
    let pb = fresh.map_majorana_sum(next);
    assert_eq!(pa, pb, "{ctx}: mapped Pauli sum drifted");
    if check_compile {
        let ca = trotter_circuit(&pa, 1.0, 1, TermOrder::Lexicographic).metrics();
        let cb = trotter_circuit(&pb, 1.0, 1, TermOrder::Lexicographic).metrics();
        assert_eq!(
            (ca.cnot, ca.depth),
            (cb.cnot, cb.depth),
            "{ctx}: compiled CNOT/depth drifted"
        );
    }
}

/// Runs one randomized delta chain: at every step a random edit (20%
/// an undo of the previous step, 30% a composition of two scripts,
/// otherwise a single script) is applied incrementally through
/// `mapper.remap` and differentially compared against a cold build in
/// an isolated fresh mapper. Returns the incremental mappings, one per
/// case.
fn run_chain(
    label: &str,
    base: &MajoranaSum,
    policy: SelectionPolicy,
    threads: Option<usize>,
    steps: usize,
    seed: u64,
    check_compile: bool,
) -> Vec<HattMapping> {
    let mapper = mapper_with(policy, threads);
    let mut current = base.clone();
    mapper
        .map(&current)
        .unwrap_or_else(|e| panic!("{label}: base maps: {e}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prev_delta: Option<HamiltonianDelta> = None;
    let mut out = Vec::with_capacity(steps);
    for step in 0..steps {
        let delta = match prev_delta.as_ref() {
            Some(d) if rng.gen_bool(0.2) => d.inverted(),
            _ if rng.gen_bool(0.3) => {
                let first = random_delta(&mut rng, &current);
                let mid = first.apply(&current).expect("first half applies");
                let second = random_delta(&mut rng, &mid);
                first.compose(&second).expect("same mode count")
            }
            _ => random_delta(&mut rng, &current),
        };
        let next = delta.apply(&current).expect("chain delta applies");
        let ctx = format!("{label} step {step}");
        let incremental = mapper
            .remap(&current, &delta)
            .unwrap_or_else(|e| panic!("{ctx}: remap: {e}"));
        let fresh = mapper_with(policy, threads)
            .map(&next)
            .unwrap_or_else(|e| panic!("{ctx}: fresh map: {e}"));
        assert_equiv(&ctx, &next, &incremental, &fresh, check_compile);
        out.push(incremental);
        prev_delta = Some(delta);
        current = next;
    }
    out
}

/// The Table I roster plus neutrino models and two synthetic molecules,
/// with a per-base step budget (fewer steps for the 20+ mode cases so
/// the cold reference builds stay affordable).
fn full_roster() -> Vec<(String, MajoranaSum, usize)> {
    let mut cases: Vec<(String, MajoranaSum, usize)> = molecule_catalog()
        .into_iter()
        .map(|spec| {
            let h = preprocess(&spec.hamiltonian());
            let steps = if h.n_modes() >= 20 { 3 } else { 7 };
            (spec.name.to_string(), h, steps)
        })
        .collect();
    for (s, f) in [(3usize, 2usize), (4, 2)] {
        let model = NeutrinoModel::new(s, f);
        cases.push((
            format!("neutrino {}", model.label()),
            preprocess(&model.hamiltonian()),
            7,
        ));
    }
    for seed in [11u64, 12] {
        cases.push((
            format!("synthetic n=10 seed={seed}"),
            preprocess(&random_hermitian(10, 12, 10, seed)),
            7,
        ));
    }
    cases
}

/// Small bases for the expensive portfolio policies (lookahead, beam,
/// restarts): ≤ 12 modes keeps the per-step cold reference builds fast
/// enough to afford 64+ cases per policy.
fn small_roster() -> Vec<(String, MajoranaSum, usize)> {
    let mut cases: Vec<(String, MajoranaSum, usize)> = molecule_catalog()
        .into_iter()
        .filter(|spec| spec.n_modes <= 12)
        .map(|spec| {
            (
                spec.name.to_string(),
                preprocess(&spec.hamiltonian()),
                8usize,
            )
        })
        .collect();
    let model = NeutrinoModel::new(3, 2);
    cases.push((
        format!("neutrino {}", model.label()),
        preprocess(&model.hamiltonian()),
        8,
    ));
    for (i, seed) in [21u64, 22, 23, 24].into_iter().enumerate() {
        let n = 6 + i;
        cases.push((
            format!("synthetic n={n} seed={seed}"),
            preprocess(&random_hermitian(n, 8, 6, seed)),
            8,
        ));
    }
    cases
}

#[test]
fn greedy_and_vanilla_remap_is_bit_identical_on_the_table1_roster() {
    for (pname, policy) in [
        ("greedy", SelectionPolicy::Greedy),
        ("vanilla", SelectionPolicy::Vanilla),
    ] {
        let mut cases = 0usize;
        for (i, (name, base, steps)) in full_roster().into_iter().enumerate() {
            let label = format!("{pname}/{name}");
            // Compile comparison only on the small bases: the Trotter
            // compile of a 30-mode molecule would dominate the runtime
            // without adding differential power (the mapped Pauli sums
            // are compared bit-identically everywhere).
            let check_compile = base.n_modes() <= 14;
            cases += run_chain(
                &label,
                &base,
                policy,
                None,
                steps,
                0xD1F0 + i as u64,
                check_compile,
            )
            .len();
        }
        assert!(
            cases >= MIN_CASES_PER_POLICY,
            "{pname}: only {cases} differential cases (need ≥ {MIN_CASES_PER_POLICY})"
        );
    }
}

#[test]
fn portfolio_policies_remap_is_bit_identical_on_small_molecules() {
    for (pname, policy) in [
        ("lookahead:2", SelectionPolicy::Lookahead { width: 2 }),
        ("beam:4", SelectionPolicy::Beam { width: 4 }),
        ("restarts", SelectionPolicy::Restarts),
    ] {
        let mut cases = 0usize;
        for (i, (name, base, steps)) in small_roster().into_iter().enumerate() {
            let label = format!("{pname}/{name}");
            cases += run_chain(
                &label,
                &base,
                policy,
                None,
                steps,
                0xBEA1 + i as u64,
                base.n_modes() <= 10,
            )
            .len();
        }
        assert!(
            cases >= MIN_CASES_PER_POLICY,
            "{pname}: only {cases} differential cases (need ≥ {MIN_CASES_PER_POLICY})"
        );
    }
}

#[test]
fn remap_chains_are_bit_identical_across_1_2_4_threads() {
    let bases = [
        (
            "neutrino (3,2)",
            preprocess(&NeutrinoModel::new(3, 2).hamiltonian()),
        ),
        ("synthetic n=9", preprocess(&random_hermitian(9, 10, 8, 31))),
    ];
    for (pname, policy) in [
        ("greedy", SelectionPolicy::Greedy),
        ("restarts", SelectionPolicy::Restarts),
    ] {
        for (name, base) in &bases {
            let label = format!("threads/{pname}/{name}");
            // The same seeded chain at every thread count: beyond the
            // per-step fresh-build comparison inside run_chain, the
            // whole chain must be bit-identical across 1/2/4 workers.
            let runs: Vec<Vec<HattMapping>> = [1usize, 2, 4]
                .into_iter()
                .map(|t| run_chain(&label, base, policy, Some(t), 5, 0x7EAD, false))
                .collect();
            for (i, run) in runs.iter().enumerate().skip(1) {
                assert_eq!(run.len(), runs[0].len());
                for (step, (a, b)) in runs[0].iter().zip(run).enumerate() {
                    assert_eq!(
                        a.tree(),
                        b.tree(),
                        "{label}: step {step} tree differs between 1 thread and {} threads",
                        [1, 2, 4][i]
                    );
                    assert_eq!(
                        a.stats().total_weight(),
                        b.stats().total_weight(),
                        "{label}: step {step} weight differs across thread counts"
                    );
                }
            }
        }
    }
}

#[test]
fn single_term_delta_chains_run_strictly_fewer_constructions_than_fresh_builds() {
    let base = preprocess(&NeutrinoModel::new(3, 2).hamiltonian());
    let mapper = Mapper::new();
    mapper.map(&base).expect("base maps");
    assert_eq!(mapper.cache().constructions(), 1);

    let mut rng = StdRng::seed_from_u64(0xFA57);
    let mut current = base;
    let k = 8usize;
    for step in 0..k {
        // Exactly one term edited per delta — the adaptive-VQE shape.
        let mut delta = HamiltonianDelta::new(current.n_modes());
        let support = random_absent_support(&mut rng, &current);
        delta
            .push_add(hermitian_coeff(support.len(), 0.5), &support)
            .expect("insertion applies");
        let next = delta.apply(&current).expect("applies");
        let incremental = mapper.remap(&current, &delta).expect("remap");
        let fresh = Mapper::new().map(&next).expect("fresh map");
        assert_equiv(
            &format!("constructions step {step}"),
            &next,
            &incremental,
            &fresh,
            false,
        );
        current = next;
    }
    // A fresh-build pipeline would have run k+1 cold constructions; the
    // incremental path must keep the single base construction and serve
    // every edit from the ancestor tree.
    assert_eq!(mapper.cache().remaps(), k as u64, "every edit remapped");
    assert_eq!(
        mapper.cache().constructions(),
        1,
        "single-term deltas must not construct cold"
    );
    assert!(mapper.cache().constructions() < (k + 1) as u64);
}

#[test]
fn compose_and_undo_round_trips_are_bit_identical() {
    let base = preprocess(&random_hermitian(8, 10, 8, 77));
    let mapper = Mapper::new();
    mapper.map(&base).expect("base maps");

    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let d1 = random_delta(&mut rng, &base);
    let mid = d1.apply(&base).expect("d1 applies");
    let d2 = random_delta(&mut rng, &mid);
    let next = d2.apply(&mid).expect("d2 applies");

    // Composition: one remap over d1∘d2 equals the fresh build of the
    // final Hamiltonian.
    let composed = d1.compose(&d2).expect("same mode count");
    let incremental = mapper.remap(&base, &composed).expect("composed remap");
    let fresh = Mapper::new().map(&next).expect("fresh map");
    assert_equiv("compose", &next, &incremental, &fresh, true);

    // Undo: walking the inverse scripts back must land exactly on the
    // original mapping.
    let undo = composed.inverted();
    assert_eq!(undo.apply(&next).expect("undo applies"), base);
    let unwound = mapper.remap(&next, &undo).expect("undo remap");
    let original = Mapper::new().map(&base).expect("fresh base map");
    assert_equiv("undo", &base, &unwound, &original, true);
}

#[test]
fn remap_chain_over_the_hattd_socket_is_bit_identical_and_avoids_cold_builds() {
    let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    let base = preprocess(&NeutrinoModel::new(3, 2).hamiltonian());

    // Warm the daemon with the base structure (one cold construction).
    let warm = client::request(addr, &MapRequest::new("warm", vec![base.clone()]))
        .expect("warm round trip");
    assert_eq!(warm.done.errors, 0);

    let mut rng = StdRng::seed_from_u64(0x50CE);
    let mut current = base;
    let k = 6usize;
    for step in 0..k {
        let delta = random_delta(&mut rng, &current);
        let next = delta.apply(&current).expect("applies");
        let req = MapDeltaRequest::new(format!("chain-{step}"), current.clone(), delta);
        let reply = client::remap(addr, &req).expect("map_delta round trip");
        assert_eq!(reply.done.errors, 0, "step {step}");
        let remote = reply.items[0].mapping().expect("ok item");
        let fresh = Mapper::new().map(&next).expect("fresh map");
        assert_eq!(
            remote.tree(),
            fresh.tree(),
            "step {step}: socket remap tree drifted"
        );
        assert_eq!(
            remote.stats().total_weight(),
            fresh.stats().total_weight(),
            "step {step}: socket remap weight drifted"
        );
        assert_eq!(
            remote.map_majorana_sum(&next).weight(),
            fresh.map_majorana_sum(&next).weight(),
            "step {step}: socket remap compile weight drifted"
        );
        current = next;
    }

    // Strictly fewer constructions than the fresh-build pipeline: the
    // whole chain re-used the warm base, never constructing cold.
    let stats = client::stats(addr, "probe").expect("stats");
    assert_eq!(stats.remaps, k as u64);
    assert_eq!(stats.constructions, 1, "only the warm-up built cold");
    assert!(stats.constructions < (k + 1) as u64);
    server.shutdown();
}
